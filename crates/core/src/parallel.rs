//! Parallel execution of independent simulations.
//!
//! Each simulation is single-threaded and deterministic; a sweep of tens of points is
//! embarrassingly parallel.  The executor uses scoped threads pulling job indices from
//! a shared atomic counter (a lock-free work queue over `0..jobs`), with a mutex-guarded
//! result buffer and a progress callback invoked after every finished run.

use crate::experiment::ExperimentSpec;
use dragonfly_stats::{BatchReport, SimReport, WorkloadReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller passes `None`.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Run `jobs` independent work items on scoped threads, preserving index order.
/// Shared by the `run_*_parallel` entry points and [`crate::SweepRunner`].
pub(crate) fn run_indexed<T, F>(jobs: usize, threads: Option<usize>, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads
        .unwrap_or_else(default_threads)
        .clamp(1, jobs.max(1));
    let next_job = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next_job = &next_job;
            let results = &results;
            let work = &work;
            scope.spawn(move || loop {
                let index = next_job.fetch_add(1, Ordering::Relaxed);
                if index >= jobs {
                    break;
                }
                let value = work(index);
                results.lock().expect("result buffer poisoned")[index] = Some(value);
            });
        }
    });

    results
        .into_inner()
        .expect("result buffer poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job must produce a result"))
        .collect()
}

/// Run `total` work items through [`run_indexed`], invoking `progress` with
/// `(finished, total)` under a shared counter after each one.  The single body
/// behind every `run_*_parallel` entry point.
fn run_with_progress<T, F>(
    total: usize,
    threads: Option<usize>,
    progress: impl Fn(usize, usize) + Sync,
    work: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let done = Mutex::new(0usize);
    run_indexed(total, threads, |i| {
        let value = work(i);
        let mut d = done.lock().expect("progress counter poisoned");
        *d += 1;
        progress(*d, total);
        value
    })
}

/// Run every steady-state specification, possibly in parallel, preserving order.
///
/// `threads = None` uses all available hardware threads.  `progress` is called after
/// each finished run with `(finished, total)`.
pub fn run_parallel(
    specs: &[ExperimentSpec],
    threads: Option<usize>,
    progress: impl Fn(usize, usize) + Sync,
) -> Vec<SimReport> {
    run_with_progress(specs.len(), threads, progress, |i| specs[i].run())
}

/// Run every workload specification, possibly in parallel, preserving order and
/// returning the full per-job/per-phase breakdowns.
///
/// The workload-aware sibling of [`run_parallel`]: each spec must carry
/// [`crate::TrafficKind::Workload`] traffic (see [`ExperimentSpec::run_workload`]).
pub fn run_workloads_parallel(
    specs: &[ExperimentSpec],
    threads: Option<usize>,
    progress: impl Fn(usize, usize) + Sync,
) -> Vec<WorkloadReport> {
    run_with_progress(specs.len(), threads, progress, |i| specs[i].run_workload())
}

/// Run every specification in burst-consumption mode, possibly in parallel,
/// preserving order.
pub fn run_batches_parallel(
    specs: &[ExperimentSpec],
    packets_per_node: u64,
    max_cycles: u64,
    threads: Option<usize>,
    progress: impl Fn(usize, usize) + Sync,
) -> Vec<BatchReport> {
    run_with_progress(specs.len(), threads, progress, |i| {
        specs[i].run_batch(packets_per_node, max_cycles)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrafficKind;
    use dragonfly_routing::RoutingKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick_spec(routing: RoutingKind, load: f64, seed: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(2);
        spec.routing = routing;
        spec.traffic = TrafficKind::Uniform;
        spec.offered_load = load;
        spec.warmup = 500;
        spec.measure = 800;
        spec.drain = 800;
        spec.seed = seed;
        spec
    }

    #[test]
    fn parallel_preserves_order_and_counts_progress() {
        let specs = vec![
            quick_spec(RoutingKind::Minimal, 0.05, 1),
            quick_spec(RoutingKind::Olm, 0.1, 2),
            quick_spec(RoutingKind::Rlm, 0.15, 3),
        ];
        let calls = AtomicUsize::new(0);
        let reports = run_parallel(&specs, Some(2), |_, total| {
            assert_eq!(total, 3);
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(reports.len(), 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(reports[0].routing, "Minimal");
        assert_eq!(reports[1].routing, "OLM");
        assert_eq!(reports[2].routing, "RLM");
        assert!((reports[2].offered_load - 0.15).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential_results() {
        // Determinism: the same spec run in parallel or alone yields identical numbers.
        let spec = quick_spec(RoutingKind::Rlm, 0.2, 9);
        let alone = spec.run();
        let parallel = run_parallel(&vec![spec.clone(); 3], Some(3), |_, _| {});
        for report in &parallel {
            assert_eq!(report.packets_delivered, alone.packets_delivered);
            assert!((report.accepted_load - alone.accepted_load).abs() < 1e-12);
            assert!((report.avg_latency_cycles - alone.avg_latency_cycles).abs() < 1e-9);
        }
    }

    #[test]
    fn single_thread_fallback_works() {
        let specs = vec![quick_spec(RoutingKind::Minimal, 0.05, 4)];
        let reports = run_parallel(&specs, Some(1), |_, _| {});
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn workload_parallel_returns_breakdowns_in_order() {
        use dragonfly_workload::WorkloadSpec;
        let workload = WorkloadSpec::interference(72, 1, 0.3, 0.1);
        let specs: Vec<ExperimentSpec> = [RoutingKind::Minimal, RoutingKind::Olm]
            .into_iter()
            .map(|routing| {
                let mut spec = quick_spec(routing, 0.0, 5);
                spec.traffic = TrafficKind::Workload(workload.clone());
                spec
            })
            .collect();
        let reports = run_workloads_parallel(&specs, Some(2), |_, _| {});
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].aggregate.routing, "Minimal");
        assert_eq!(reports[1].aggregate.routing, "OLM");
        // Parallel execution matches a plain sequential call, per spec.
        assert_eq!(reports[1], specs[1].run_workload());
    }

    #[test]
    fn batch_parallel_runs() {
        let specs = vec![
            quick_spec(RoutingKind::Olm, 1.0, 5),
            quick_spec(RoutingKind::Rlm, 1.0, 6),
        ];
        let reports = run_batches_parallel(&specs, 2, 100_000, Some(2), |_, _| {});
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(!r.timed_out);
            assert_eq!(r.packets_total, r.packets_delivered);
        }
    }
}
