//! Single-experiment specification and execution.

use dragonfly_probe::{ProbeConfig, ProbeRecorder, RunManifest, MANIFEST_SCHEMA_VERSION};
use dragonfly_routing::{AdaptiveParams, RoutingKind, RoutingVisitor};
use dragonfly_sched::Trace;
use dragonfly_sim::{RoutingAlgorithm, SimConfig, Simulation};
use dragonfly_stats::{BatchReport, SimReport, WorkloadReport};
use dragonfly_topology::DragonflyParams;
use dragonfly_traffic::{
    AdversarialGlobal, AdversarialLocal, BurstSpec, MixedGlobalLocal, TrafficPattern, Uniform,
};
use dragonfly_workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Which of the paper's two flow-control setups to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowControlKind {
    /// Virtual Cut-Through with 8-phit packets (Cascade-like, Section IV-A).
    Vct,
    /// Wormhole with 80-phit packets of 8×10-phit flits (PERCS-like, Section IV-B).
    Wormhole,
}

impl FlowControlKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FlowControlKind::Vct => "VCT",
            FlowControlKind::Wormhole => "WH",
        }
    }

    /// The packet size (phits) the paper uses for this flow control.
    pub fn packet_size(self) -> usize {
        match self {
            FlowControlKind::Vct => 8,
            FlowControlKind::Wormhole => 80,
        }
    }
}

/// Which traffic pattern to drive the network with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficKind {
    /// Uniform random traffic.
    Uniform,
    /// Adversarial-global with the given group offset (ADVG+N).
    AdversarialGlobal(usize),
    /// Adversarial-local with the given router offset (ADVL+N).
    AdversarialLocal(usize),
    /// Mix of ADVG+`global_offset` (with probability `global_fraction`) and
    /// ADVL+`local_offset`.
    Mixed {
        /// Fraction of packets following the adversarial-global component.
        global_fraction: f64,
        /// Group offset of the global component.
        global_offset: usize,
        /// Router offset of the local component.
        local_offset: usize,
    },
    /// A multi-job workload: per-job placements, patterns, offered loads and phase
    /// schedules (see [`WorkloadSpec`]).  The jobs' phases carry their own loads, so
    /// the spec's `offered_load` field is ignored; [`ExperimentSpec::run_workload`]
    /// additionally returns the per-job/per-phase breakdown.
    Workload(WorkloadSpec),
    /// A dynamic job schedule: trace-driven arrivals/departures with re-placement
    /// of freed nodes (see [`Trace`]).  Like workloads, the jobs carry their own
    /// loads; the run protocol is `Simulation::run_trace` with the spec's
    /// `measure` as the horizon and `drain` as the drain budget (`warmup` and
    /// `offered_load` are ignored — churn runs measure from cycle 0).
    Churn(Trace),
}

impl TrafficKind {
    /// ADVG+h for a given `h` (the severe pattern of Figures 4c/5c/7c/8c).
    pub fn advg_h(h: usize) -> Self {
        TrafficKind::AdversarialGlobal(h)
    }

    /// Instantiate the pattern against a topology.
    ///
    /// The paper's synthetic patterns ignore `params`; workloads compile their
    /// node-indexed, phase-switching pattern against it.
    ///
    /// # Panics
    ///
    /// Panics for [`TrafficKind::Churn`]: a churn schedule owns its destination
    /// side (the scheduler's dynamic per-job patterns), so there is no
    /// standalone pattern to build — install the trace with
    /// `Simulation::install_schedule` (as [`ExperimentSpec::run_workload`] does).
    pub fn build(&self, params: &DragonflyParams) -> Box<dyn TrafficPattern> {
        match self {
            TrafficKind::Uniform => Box::new(Uniform::new()),
            TrafficKind::AdversarialGlobal(n) => Box::new(AdversarialGlobal::new(*n)),
            TrafficKind::AdversarialLocal(n) => Box::new(AdversarialLocal::new(*n)),
            TrafficKind::Mixed {
                global_fraction,
                global_offset,
                local_offset,
            } => Box::new(MixedGlobalLocal::new(
                *global_fraction,
                *global_offset,
                *local_offset,
            )),
            TrafficKind::Workload(spec) => Box::new(spec.build_pattern(params)),
            TrafficKind::Churn(_) => panic!(
                "TrafficKind::Churn has no standalone traffic pattern; install the \
                 trace with Simulation::install_schedule instead"
            ),
        }
    }

    /// Display name matching the paper's labels.
    pub fn name(&self) -> String {
        match self {
            TrafficKind::Uniform => "UN".to_string(),
            TrafficKind::AdversarialGlobal(n) => format!("ADVG+{n}"),
            TrafficKind::AdversarialLocal(n) => format!("ADVL+{n}"),
            TrafficKind::Mixed {
                global_fraction,
                global_offset,
                local_offset,
            } => format!(
                "MIX{}%(ADVG+{global_offset}/ADVL+{local_offset})",
                (global_fraction * 100.0).round() as u32
            ),
            TrafficKind::Workload(spec) => spec.label(),
            TrafficKind::Churn(trace) => trace.label(),
        }
    }

    /// The workload specification, when this is [`TrafficKind::Workload`].
    pub fn workload(&self) -> Option<&WorkloadSpec> {
        match self {
            TrafficKind::Workload(spec) => Some(spec),
            _ => None,
        }
    }

    /// The job-arrival trace, when this is [`TrafficKind::Churn`].
    pub fn churn(&self) -> Option<&Trace> {
        match self {
            TrafficKind::Churn(trace) => Some(trace),
            _ => None,
        }
    }

    /// Whether this traffic kind produces per-job breakdowns
    /// ([`TrafficKind::Workload`] or [`TrafficKind::Churn`]).
    pub fn has_jobs(&self) -> bool {
        matches!(self, TrafficKind::Workload(_) | TrafficKind::Churn(_))
    }
}

/// Full specification of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Dragonfly parameter `h`.
    pub h: usize,
    /// Flow control / packet-size setup.
    pub flow_control: FlowControlKind,
    /// Routing mechanism.
    #[serde(skip, default = "default_routing")]
    pub routing: RoutingKind,
    /// Traffic pattern.
    pub traffic: TrafficKind,
    /// Offered load in phits/(node·cycle).
    pub offered_load: f64,
    /// Misrouting-trigger threshold for the adaptive mechanisms.
    pub threshold: f64,
    /// Random seed.
    pub seed: u64,
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Extra drain cycles after the window.
    pub drain: u64,
}

// Referenced only by the `#[serde(default = "...")]` attribute above; the offline
// serde stand-in expands derives to nothing, leaving it unused in that build.
#[allow(dead_code)]
fn default_routing() -> RoutingKind {
    RoutingKind::Minimal
}

impl ExperimentSpec {
    /// A reasonable default specification for the given scale.
    pub fn new(h: usize) -> Self {
        Self {
            h,
            flow_control: FlowControlKind::Vct,
            routing: RoutingKind::Minimal,
            traffic: TrafficKind::Uniform,
            offered_load: 0.1,
            threshold: 0.45,
            seed: 1,
            warmup: 5_000,
            measure: 8_000,
            drain: 8_000,
        }
    }

    /// Short human-readable label for this point (progress lines, file names):
    /// routing, flow control, traffic and offered load.
    pub fn label(&self) -> String {
        format!(
            "{} {} {} @{:.2}",
            self.routing.name(),
            self.flow_control.name(),
            self.traffic.name(),
            self.offered_load
        )
    }

    /// Build the simulator configuration implied by this specification.
    pub fn sim_config(&self) -> SimConfig {
        let base = match self.flow_control {
            FlowControlKind::Vct => SimConfig::paper_vct(self.h),
            FlowControlKind::Wormhole => SimConfig::paper_wormhole(self.h),
        };
        base.with_local_vcs(self.routing.local_vcs())
            .with_seed(self.seed)
    }

    /// Build the type-erased simulation (network + boxed routing + traffic) for this
    /// specification.  Kept for custom experiments that need to own a `Simulation`
    /// without naming the mechanism type; the `run*` methods below use the
    /// monomorphized engine instead.  A workload traffic kind is fully installed
    /// (patterns, injection rates and per-job statistics).
    pub fn build_simulation(&self) -> Simulation {
        let routing = self
            .routing
            .build_with(AdaptiveParams::with_threshold(self.threshold));
        build_with_routing(self, routing)
    }

    /// Run the steady-state protocol and return the report.
    ///
    /// Dispatches to a simulation monomorphized over the concrete routing mechanism;
    /// the result is bit-identical to the dynamic path ([`ExperimentSpec::run_dyn`]).
    /// For workload traffic this is the aggregate half of
    /// [`ExperimentSpec::run_workload`].
    pub fn run(&self) -> SimReport {
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            SteadyStateRun(self),
        )
    }

    /// Run the steady-state protocol through the type-erased engine.  Same seed ⇒
    /// same report as [`ExperimentSpec::run`]; exists for comparison benchmarks and
    /// the equivalence tests.
    pub fn run_dyn(&self) -> SimReport {
        let mut sim = self.build_simulation();
        if sim.network().workload().is_some() || sim.network().schedule().is_some() {
            run_jobs_with(&mut sim, self).aggregate
        } else {
            sim.run_steady_state(self.offered_load, self.warmup, self.measure, self.drain)
        }
    }

    /// Run a workload or churn experiment and return the per-job (and, for static
    /// workloads, per-phase) breakdown alongside the aggregate report.  Statically
    /// dispatched like [`ExperimentSpec::run`].  Churn specs run the trace
    /// protocol: jobs arrive, wait, run and depart; their reports carry lifecycle
    /// columns (wait, completion, slowdown).
    ///
    /// # Panics
    ///
    /// Panics when the traffic kind is neither [`TrafficKind::Workload`] nor
    /// [`TrafficKind::Churn`].
    pub fn run_workload(&self) -> WorkloadReport {
        assert!(
            self.traffic.has_jobs(),
            "run_workload requires TrafficKind::Workload or TrafficKind::Churn traffic"
        );
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            WorkloadRun(self),
        )
    }

    /// Run a workload or churn experiment through the type-erased engine (see
    /// [`ExperimentSpec::run_dyn`]).  Same seed ⇒ same report as
    /// [`ExperimentSpec::run_workload`].
    pub fn run_workload_dyn(&self) -> WorkloadReport {
        assert!(
            self.traffic.has_jobs(),
            "run_workload_dyn requires TrafficKind::Workload or TrafficKind::Churn traffic"
        );
        let mut sim = self.build_simulation();
        run_jobs_with(&mut sim, self)
    }

    /// Run the steady-state protocol on the sharded engine: the single
    /// simulation is partitioned into `shards` per-group partitions stepping
    /// concurrently under a cycle barrier (see `dragonfly_shard`).  The report
    /// is byte-identical to [`ExperimentSpec::run`] — sharding only changes
    /// wall-clock time.  `shards = 1` still uses the partitioned engine with a
    /// single worker; workload and churn specs return the aggregate half of
    /// [`ExperimentSpec::run_workload_sharded`].
    pub fn run_sharded(&self, shards: usize) -> SimReport {
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            ShardedSteadyRun { spec: self, shards },
        )
    }

    /// Run a workload or churn experiment on the sharded engine; byte-identical
    /// to [`ExperimentSpec::run_workload`].
    ///
    /// # Panics
    ///
    /// Panics when the traffic kind is neither [`TrafficKind::Workload`] nor
    /// [`TrafficKind::Churn`].
    pub fn run_workload_sharded(&self, shards: usize) -> WorkloadReport {
        assert!(
            self.traffic.has_jobs(),
            "run_workload_sharded requires TrafficKind::Workload or TrafficKind::Churn traffic"
        );
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            ShardedWorkloadRun { spec: self, shards },
        )
    }

    /// Run the steady-state protocol with observability probes installed and
    /// return the recorder alongside the report.
    ///
    /// Probes are read-only: the report is byte-identical to
    /// [`ExperimentSpec::run`] (pinned by `tests/probe_invariance.rs`).  For
    /// workload or churn traffic the report is the aggregate half of
    /// [`ExperimentSpec::run_workload_probed`].
    pub fn run_probed(&self, probes: ProbeConfig) -> (SimReport, ProbeRecorder) {
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            ProbedSteadyRun { spec: self, probes },
        )
    }

    /// Run the steady-state protocol on the sharded engine with probes
    /// installed in every shard replica, returning the order-independently
    /// merged recorder.  Both the report and the recorder's pinned outputs are
    /// byte-identical to [`ExperimentSpec::run_probed`] (the diagnostics
    /// series is the documented exception — see `dragonfly_probe`).
    pub fn run_probed_sharded(
        &self,
        probes: ProbeConfig,
        shards: usize,
    ) -> (SimReport, ProbeRecorder) {
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            ProbedShardedSteadyRun {
                spec: self,
                probes,
                shards,
            },
        )
    }

    /// Run a workload or churn experiment with probes installed (see
    /// [`ExperimentSpec::run_probed`]).
    ///
    /// # Panics
    ///
    /// Panics when the traffic kind is neither [`TrafficKind::Workload`] nor
    /// [`TrafficKind::Churn`].
    pub fn run_workload_probed(&self, probes: ProbeConfig) -> (WorkloadReport, ProbeRecorder) {
        assert!(
            self.traffic.has_jobs(),
            "run_workload_probed requires TrafficKind::Workload or TrafficKind::Churn traffic"
        );
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            ProbedWorkloadRun { spec: self, probes },
        )
    }

    /// Run a workload or churn experiment on the sharded engine with probes
    /// installed (see [`ExperimentSpec::run_probed_sharded`]).
    ///
    /// # Panics
    ///
    /// Panics when the traffic kind is neither [`TrafficKind::Workload`] nor
    /// [`TrafficKind::Churn`].
    pub fn run_workload_probed_sharded(
        &self,
        probes: ProbeConfig,
        shards: usize,
    ) -> (WorkloadReport, ProbeRecorder) {
        assert!(
            self.traffic.has_jobs(),
            "run_workload_probed_sharded requires TrafficKind::Workload or TrafficKind::Churn \
             traffic"
        );
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            ProbedShardedWorkloadRun {
                spec: self,
                probes,
                shards,
            },
        )
    }

    /// Run the burst-consumption protocol: `packets_per_node` packets per node, with a
    /// safety limit of `max_cycles`.  Statically dispatched like [`ExperimentSpec::run`].
    pub fn run_batch(&self, packets_per_node: u64, max_cycles: u64) -> BatchReport {
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            BatchRun {
                spec: self,
                packets_per_node,
                max_cycles,
            },
        )
    }

    /// Run the burst-consumption protocol through the type-erased engine (see
    /// [`ExperimentSpec::run_dyn`]).
    pub fn run_batch_dyn(&self, packets_per_node: u64, max_cycles: u64) -> BatchReport {
        let mut sim = self.build_simulation();
        let burst = BurstSpec::new(packets_per_node, self.flow_control.packet_size());
        sim.run_batch(burst, max_cycles)
    }

    /// Run the burst-consumption protocol on the sharded engine; byte-identical
    /// to [`ExperimentSpec::run_batch`].
    pub fn run_batch_sharded(
        &self,
        packets_per_node: u64,
        max_cycles: u64,
        shards: usize,
    ) -> BatchReport {
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            ShardedBatchRun {
                spec: self,
                packets_per_node,
                max_cycles,
                shards,
            },
        )
    }

    /// Run the burst-consumption protocol with probes installed (see
    /// [`ExperimentSpec::run_probed`]).
    pub fn run_batch_probed(
        &self,
        packets_per_node: u64,
        max_cycles: u64,
        probes: ProbeConfig,
    ) -> (BatchReport, ProbeRecorder) {
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            ProbedBatchRun {
                spec: self,
                packets_per_node,
                max_cycles,
                probes,
            },
        )
    }

    /// Run the burst-consumption protocol on the sharded engine with probes
    /// installed (see [`ExperimentSpec::run_probed_sharded`]).
    pub fn run_batch_probed_sharded(
        &self,
        packets_per_node: u64,
        max_cycles: u64,
        probes: ProbeConfig,
        shards: usize,
    ) -> (BatchReport, ProbeRecorder) {
        self.routing.dispatch(
            AdaptiveParams::with_threshold(self.threshold),
            ProbedShardedBatchRun {
                spec: self,
                packets_per_node,
                max_cycles,
                probes,
                shards,
            },
        )
    }

    /// Build the [`RunManifest`] describing this spec, with zeroed peak
    /// telemetry.  Use [`ExperimentSpec::manifest_with_report`] when a
    /// [`SimReport`] is at hand.
    pub fn manifest(&self, title: &str) -> RunManifest {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            title: title.to_string(),
            h: self.h as u64,
            routing: self.routing.name().to_string(),
            flow_control: self.flow_control.name().to_string(),
            traffic: self.traffic.name(),
            offered_load: self.offered_load,
            threshold: self.threshold,
            seed: self.seed,
            warmup: self.warmup,
            measure: self.measure,
            drain: self.drain,
            peak_in_flight_packets: 0,
            peak_buffered_phits: 0,
            peak_vc_occupancy: 0,
        }
    }

    /// [`ExperimentSpec::manifest`] with the peak-telemetry section filled
    /// from a run's report.
    pub fn manifest_with_report(&self, title: &str, report: &SimReport) -> RunManifest {
        RunManifest {
            peak_in_flight_packets: report.peak_in_flight_packets,
            peak_buffered_phits: report.peak_buffered_phits,
            peak_vc_occupancy: report.peak_vc_occupancy,
            ..self.manifest(title)
        }
    }
}

/// Build the monomorphized simulation for a spec, installing any workload or
/// churn schedule.
fn build_with_routing<R: RoutingAlgorithm + 'static>(
    spec: &ExperimentSpec,
    routing: R,
) -> Simulation<R> {
    let config = spec.sim_config();
    let params = config.params;
    if let Some(workload) = spec.traffic.workload() {
        // install_workload compiles both the pattern and the runtime from one
        // placement, so the construction-time pattern is a throwaway.
        let mut sim = Simulation::with_routing(config, routing, Box::new(Uniform::new()));
        sim.install_workload(workload);
        sim
    } else if let Some(trace) = spec.traffic.churn() {
        // The schedule owns its destination side; the pattern is a throwaway too.
        let mut sim = Simulation::with_routing(config, routing, Box::new(Uniform::new()));
        sim.install_schedule(trace);
        sim
    } else {
        Simulation::with_routing(config, routing, spec.traffic.build(&params))
    }
}

/// Run the per-job protocol an installed spec implies: the trace protocol for
/// churn specs, the steady-state workload protocol otherwise.
fn run_jobs_with<R: RoutingAlgorithm>(
    sim: &mut Simulation<R>,
    spec: &ExperimentSpec,
) -> WorkloadReport {
    if sim.network().schedule().is_some() {
        sim.run_trace(spec.measure, spec.drain)
    } else {
        sim.run_steady_state_workload(spec.warmup, spec.measure, spec.drain)
    }
}

/// Build the sharded simulation for a spec, installing any workload or churn
/// schedule into every shard replica (the sharded sibling of
/// [`build_with_routing`]).
fn build_sharded_with_routing<R: RoutingAlgorithm + Clone>(
    spec: &ExperimentSpec,
    routing: R,
    shards: usize,
) -> dragonfly_shard::ShardedSimulation<R> {
    use dragonfly_shard::{ShardPlan, ShardedSimulation};
    let config = spec.sim_config();
    let params = config.params;
    let plan = ShardPlan::new(shards);
    if let Some(workload) = spec.traffic.workload() {
        let mut sim = ShardedSimulation::new(config, plan, routing, || Box::new(Uniform::new()));
        sim.install_workload(workload);
        sim
    } else if let Some(trace) = spec.traffic.churn() {
        let mut sim = ShardedSimulation::new(config, plan, routing, || Box::new(Uniform::new()));
        sim.install_schedule(trace);
        sim
    } else {
        ShardedSimulation::new(config, plan, routing, || spec.traffic.build(&params))
    }
}

/// Visitor running the steady-state protocol on the sharded engine.
struct ShardedSteadyRun<'a> {
    spec: &'a ExperimentSpec,
    shards: usize,
}

impl RoutingVisitor for ShardedSteadyRun<'_> {
    type Output = SimReport;

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> SimReport {
        let spec = self.spec;
        let mut sim = build_sharded_with_routing(spec, routing, self.shards);
        if spec.traffic.has_jobs() {
            run_sharded_jobs_with(&mut sim, spec).aggregate
        } else {
            sim.run_steady_state(spec.offered_load, spec.warmup, spec.measure, spec.drain)
        }
    }
}

/// Visitor running a workload or churn run on the sharded engine.
struct ShardedWorkloadRun<'a> {
    spec: &'a ExperimentSpec,
    shards: usize,
}

impl RoutingVisitor for ShardedWorkloadRun<'_> {
    type Output = WorkloadReport;

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> WorkloadReport {
        let spec = self.spec;
        let mut sim = build_sharded_with_routing(spec, routing, self.shards);
        run_sharded_jobs_with(&mut sim, spec)
    }
}

/// Run the per-job protocol a sharded spec implies (the sharded sibling of
/// [`run_jobs_with`]).
fn run_sharded_jobs_with<R: RoutingAlgorithm + Clone>(
    sim: &mut dragonfly_shard::ShardedSimulation<R>,
    spec: &ExperimentSpec,
) -> WorkloadReport {
    if spec.traffic.churn().is_some() {
        sim.run_trace(spec.measure, spec.drain)
    } else {
        sim.run_steady_state_workload(spec.warmup, spec.measure, spec.drain)
    }
}

/// Visitor running the burst-consumption protocol on the sharded engine.
struct ShardedBatchRun<'a> {
    spec: &'a ExperimentSpec,
    packets_per_node: u64,
    max_cycles: u64,
    shards: usize,
}

impl RoutingVisitor for ShardedBatchRun<'_> {
    type Output = BatchReport;

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> BatchReport {
        let spec = self.spec;
        let mut sim = build_sharded_with_routing(spec, routing, self.shards);
        let burst = BurstSpec::new(self.packets_per_node, spec.flow_control.packet_size());
        sim.run_batch(burst, self.max_cycles)
    }
}

/// Visitor running the steady-state protocol with probes installed.
struct ProbedSteadyRun<'a> {
    spec: &'a ExperimentSpec,
    probes: ProbeConfig,
}

impl RoutingVisitor for ProbedSteadyRun<'_> {
    type Output = (SimReport, ProbeRecorder);

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> Self::Output {
        let spec = self.spec;
        let mut sim = build_with_routing(spec, routing);
        sim.install_probes(self.probes);
        let report = if sim.network().workload().is_some() || sim.network().schedule().is_some() {
            run_jobs_with(&mut sim, spec).aggregate
        } else {
            sim.run_steady_state(spec.offered_load, spec.warmup, spec.measure, spec.drain)
        };
        let probe = *sim.take_probe().expect("probes were installed above");
        (report, probe)
    }
}

/// Visitor running the steady-state protocol on the sharded engine with probes
/// installed in every replica.
struct ProbedShardedSteadyRun<'a> {
    spec: &'a ExperimentSpec,
    probes: ProbeConfig,
    shards: usize,
}

impl RoutingVisitor for ProbedShardedSteadyRun<'_> {
    type Output = (SimReport, ProbeRecorder);

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> Self::Output {
        let spec = self.spec;
        let mut sim = build_sharded_with_routing(spec, routing, self.shards);
        sim.install_probes(self.probes);
        let report = if spec.traffic.has_jobs() {
            run_sharded_jobs_with(&mut sim, spec).aggregate
        } else {
            sim.run_steady_state(spec.offered_load, spec.warmup, spec.measure, spec.drain)
        };
        let probe = sim.merged_probe().expect("probes were installed above");
        (report, probe)
    }
}

/// Visitor running a workload or churn experiment with probes installed.
struct ProbedWorkloadRun<'a> {
    spec: &'a ExperimentSpec,
    probes: ProbeConfig,
}

impl RoutingVisitor for ProbedWorkloadRun<'_> {
    type Output = (WorkloadReport, ProbeRecorder);

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> Self::Output {
        let spec = self.spec;
        let mut sim = build_with_routing(spec, routing);
        sim.install_probes(self.probes);
        let report = run_jobs_with(&mut sim, spec);
        let probe = *sim.take_probe().expect("probes were installed above");
        (report, probe)
    }
}

/// Visitor running a workload or churn experiment on the sharded engine with
/// probes installed in every replica.
struct ProbedShardedWorkloadRun<'a> {
    spec: &'a ExperimentSpec,
    probes: ProbeConfig,
    shards: usize,
}

impl RoutingVisitor for ProbedShardedWorkloadRun<'_> {
    type Output = (WorkloadReport, ProbeRecorder);

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> Self::Output {
        let spec = self.spec;
        let mut sim = build_sharded_with_routing(spec, routing, self.shards);
        sim.install_probes(self.probes);
        let report = run_sharded_jobs_with(&mut sim, spec);
        let probe = sim.merged_probe().expect("probes were installed above");
        (report, probe)
    }
}

/// Visitor running the burst-consumption protocol with probes installed.
struct ProbedBatchRun<'a> {
    spec: &'a ExperimentSpec,
    packets_per_node: u64,
    max_cycles: u64,
    probes: ProbeConfig,
}

impl RoutingVisitor for ProbedBatchRun<'_> {
    type Output = (BatchReport, ProbeRecorder);

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> Self::Output {
        let spec = self.spec;
        let mut sim = build_with_routing(spec, routing);
        sim.install_probes(self.probes);
        let burst = BurstSpec::new(self.packets_per_node, spec.flow_control.packet_size());
        let report = sim.run_batch(burst, self.max_cycles);
        let probe = *sim.take_probe().expect("probes were installed above");
        (report, probe)
    }
}

/// Visitor running the burst-consumption protocol on the sharded engine with
/// probes installed in every replica.
struct ProbedShardedBatchRun<'a> {
    spec: &'a ExperimentSpec,
    packets_per_node: u64,
    max_cycles: u64,
    probes: ProbeConfig,
    shards: usize,
}

impl RoutingVisitor for ProbedShardedBatchRun<'_> {
    type Output = (BatchReport, ProbeRecorder);

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> Self::Output {
        let spec = self.spec;
        let mut sim = build_sharded_with_routing(spec, routing, self.shards);
        sim.install_probes(self.probes);
        let burst = BurstSpec::new(self.packets_per_node, spec.flow_control.packet_size());
        let report = sim.run_batch(burst, self.max_cycles);
        let probe = sim.merged_probe().expect("probes were installed above");
        (report, probe)
    }
}

/// Visitor running the steady-state protocol on a monomorphized simulation.
struct SteadyStateRun<'a>(&'a ExperimentSpec);

impl RoutingVisitor for SteadyStateRun<'_> {
    type Output = SimReport;

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> SimReport {
        let spec = self.0;
        let mut sim = build_with_routing(spec, routing);
        if sim.network().workload().is_some() || sim.network().schedule().is_some() {
            run_jobs_with(&mut sim, spec).aggregate
        } else {
            sim.run_steady_state(spec.offered_load, spec.warmup, spec.measure, spec.drain)
        }
    }
}

/// Visitor running a workload or churn run on a monomorphized simulation.
struct WorkloadRun<'a>(&'a ExperimentSpec);

impl RoutingVisitor for WorkloadRun<'_> {
    type Output = WorkloadReport;

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> WorkloadReport {
        let spec = self.0;
        let mut sim = build_with_routing(spec, routing);
        run_jobs_with(&mut sim, spec)
    }
}

/// Visitor running the burst-consumption protocol on a monomorphized simulation.
struct BatchRun<'a> {
    spec: &'a ExperimentSpec,
    packets_per_node: u64,
    max_cycles: u64,
}

impl RoutingVisitor for BatchRun<'_> {
    type Output = BatchReport;

    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> BatchReport {
        let spec = self.spec;
        let mut sim = build_with_routing(spec, routing);
        let burst = BurstSpec::new(self.packets_per_node, spec.flow_control.packet_size());
        sim.run_batch(burst, self.max_cycles)
    }
}

/// Fluent builder over [`ExperimentSpec`] for one-off runs and examples.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    spec: ExperimentSpec,
}

impl ExperimentBuilder {
    /// Start from the defaults for parameter `h`.
    pub fn new(h: usize) -> Self {
        Self {
            spec: ExperimentSpec::new(h),
        }
    }

    /// Select the routing mechanism.
    pub fn routing(mut self, routing: RoutingKind) -> Self {
        self.spec.routing = routing;
        self
    }

    /// Select the traffic pattern.
    pub fn traffic(mut self, traffic: TrafficKind) -> Self {
        self.spec.traffic = traffic;
        self
    }

    /// Select the flow control.
    pub fn flow_control(mut self, fc: FlowControlKind) -> Self {
        self.spec.flow_control = fc;
        self
    }

    /// Set the offered load in phits/(node·cycle).
    pub fn offered_load(mut self, load: f64) -> Self {
        self.spec.offered_load = load;
        self
    }

    /// Set the misrouting threshold.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.spec.threshold = threshold;
        self
    }

    /// Set the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Set the warm-up length in cycles.
    pub fn warmup_cycles(mut self, cycles: u64) -> Self {
        self.spec.warmup = cycles;
        self
    }

    /// Set the measurement window length in cycles.
    pub fn measure_cycles(mut self, cycles: u64) -> Self {
        self.spec.measure = cycles;
        self.spec.drain = cycles;
        self
    }

    /// The underlying specification.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// Consume the builder into its specification.
    pub fn into_spec(self) -> ExperimentSpec {
        self.spec
    }

    /// Run the steady-state experiment.
    pub fn run(self) -> SimReport {
        self.spec.run()
    }

    /// Select a workload as the traffic (shorthand for
    /// `.traffic(TrafficKind::Workload(spec))`).
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.spec.traffic = TrafficKind::Workload(workload);
        self
    }

    /// Select a churn trace as the traffic (shorthand for
    /// `.traffic(TrafficKind::Churn(trace))`).
    pub fn churn(mut self, trace: Trace) -> Self {
        self.spec.traffic = TrafficKind::Churn(trace);
        self
    }

    /// Run the workload experiment with the per-job/per-phase breakdown.
    pub fn run_workload(self) -> WorkloadReport {
        self.spec.run_workload()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_control_kind_metadata() {
        assert_eq!(FlowControlKind::Vct.name(), "VCT");
        assert_eq!(FlowControlKind::Wormhole.name(), "WH");
        assert_eq!(FlowControlKind::Vct.packet_size(), 8);
        assert_eq!(FlowControlKind::Wormhole.packet_size(), 80);
    }

    #[test]
    fn traffic_kind_names() {
        assert_eq!(TrafficKind::Uniform.name(), "UN");
        assert_eq!(TrafficKind::AdversarialGlobal(8).name(), "ADVG+8");
        assert_eq!(TrafficKind::AdversarialLocal(1).name(), "ADVL+1");
        assert_eq!(TrafficKind::advg_h(4), TrafficKind::AdversarialGlobal(4));
        let mix = TrafficKind::Mixed {
            global_fraction: 0.4,
            global_offset: 8,
            local_offset: 1,
        };
        assert!(mix.name().starts_with("MIX40%"));
    }

    #[test]
    fn spec_config_respects_routing_vcs() {
        let mut spec = ExperimentSpec::new(2);
        spec.routing = RoutingKind::Par62;
        assert_eq!(spec.sim_config().local_vcs, 6);
        spec.routing = RoutingKind::Olm;
        assert_eq!(spec.sim_config().local_vcs, 3);
        spec.flow_control = FlowControlKind::Wormhole;
        assert_eq!(spec.sim_config().packet_size, 80);
    }

    #[test]
    fn builder_round_trip() {
        let builder = ExperimentBuilder::new(2)
            .routing(RoutingKind::Olm)
            .traffic(TrafficKind::AdversarialGlobal(1))
            .flow_control(FlowControlKind::Vct)
            .offered_load(0.25)
            .threshold(0.5)
            .seed(77)
            .warmup_cycles(500)
            .measure_cycles(800);
        let spec = builder.spec();
        assert_eq!(spec.routing, RoutingKind::Olm);
        assert_eq!(spec.offered_load, 0.25);
        assert_eq!(spec.threshold, 0.5);
        assert_eq!(spec.seed, 77);
        assert_eq!(spec.warmup, 500);
        assert_eq!(spec.measure, 800);
        assert_eq!(spec.drain, 800);
        let spec = builder.into_spec();
        assert_eq!(spec.traffic, TrafficKind::AdversarialGlobal(1));
    }

    #[test]
    fn builder_runs_small_experiment() {
        let report = ExperimentBuilder::new(2)
            .routing(RoutingKind::Olm)
            .traffic(TrafficKind::Uniform)
            .offered_load(0.15)
            .warmup_cycles(800)
            .measure_cycles(1_500)
            .run();
        assert!(!report.deadlock_detected);
        assert!(report.accepted_load > 0.05);
        assert_eq!(report.routing, "OLM");
    }

    #[test]
    fn workload_traffic_kind_builds_and_runs() {
        use dragonfly_workload::WorkloadSpec;
        let workload = WorkloadSpec::interference(72, 1, 0.4, 0.1);
        let kind = TrafficKind::Workload(workload.clone());
        assert!(kind.name().starts_with("WL[aggressor:ADVG+1@0.40"));
        assert_eq!(kind.workload(), Some(&workload));
        assert!(TrafficKind::Uniform.workload().is_none());

        let mut spec = ExperimentSpec::new(2);
        spec.routing = RoutingKind::Olm;
        spec.traffic = kind;
        spec.warmup = 500;
        spec.measure = 1_000;
        spec.drain = 1_500;
        let report = spec.run_workload();
        assert_eq!(report.jobs.len(), 2);
        assert!(!report.aggregate.deadlock_detected);
        assert_eq!(report.aggregate.traffic, spec.traffic.name());
        // The aggregate-only entry point agrees with the workload run's aggregate.
        assert_eq!(spec.run(), report.aggregate);
    }

    #[test]
    #[should_panic(expected = "requires TrafficKind::Workload")]
    fn run_workload_rejects_plain_traffic() {
        let spec = ExperimentSpec::new(2);
        let _ = spec.run_workload();
    }

    #[test]
    fn churn_traffic_kind_builds_and_runs() {
        use dragonfly_sched::{Completion, Trace, TraceJob};
        use dragonfly_workload::{JobPattern, PlacementPolicy};
        let trace = Trace::new(
            "mini",
            vec![
                TraceJob {
                    name: "a".into(),
                    arrival: 0,
                    size: 24,
                    placement: PlacementPolicy::Contiguous,
                    pattern: JobPattern::AllToAll,
                    offered_load: 0.15,
                    completion: Completion::Duration(1_500),
                },
                TraceJob {
                    name: "b".into(),
                    arrival: 700,
                    size: 24,
                    placement: PlacementPolicy::Random { seed: 5 },
                    pattern: JobPattern::Uniform,
                    offered_load: 0.1,
                    completion: Completion::Duration(1_000),
                },
            ],
        );
        let kind = TrafficKind::Churn(trace.clone());
        assert_eq!(kind.name(), "CHURN[mini:2jobs]");
        assert_eq!(kind.churn(), Some(&trace));
        assert!(kind.has_jobs());
        assert!(TrafficKind::Uniform.churn().is_none());

        let mut spec = ExperimentSpec::new(2);
        spec.routing = RoutingKind::Olm;
        spec.traffic = kind;
        spec.measure = 6_000; // the horizon of a churn run
        spec.drain = 2_000;
        let report = spec.run_workload();
        assert_eq!(report.jobs.len(), 2);
        assert!(!report.aggregate.deadlock_detected);
        assert_eq!(report.aggregate.traffic, spec.traffic.name());
        let b = report.job("b").unwrap().lifecycle.unwrap();
        assert_eq!(b.arrival_cycle, 700);
        assert_eq!(b.placed_cycle, Some(700));
        // Static and dyn paths agree, and run() returns the same aggregate.
        assert_eq!(spec.run_workload_dyn(), report);
        assert_eq!(spec.run(), report.aggregate);
        assert_eq!(spec.run_dyn(), report.aggregate);
    }

    #[test]
    fn spec_labels_are_short_and_informative() {
        let mut spec = ExperimentSpec::new(2);
        spec.routing = RoutingKind::Olm;
        spec.traffic = TrafficKind::AdversarialGlobal(1);
        spec.offered_load = 0.25;
        assert_eq!(spec.label(), "OLM VCT ADVG+1 @0.25");
    }

    #[test]
    fn probed_runs_match_unprobed_and_sharded_probes_merge_exactly() {
        let mut spec = ExperimentSpec::new(2);
        spec.routing = RoutingKind::Piggybacking;
        spec.traffic = TrafficKind::AdversarialGlobal(1);
        spec.offered_load = 0.25;
        spec.warmup = 300;
        spec.measure = 600;
        spec.drain = 900;
        spec.seed = 23;

        let plain = spec.run();
        let (probed_report, probe) = spec.run_probed(ProbeConfig::full(32));
        assert_eq!(probed_report, plain, "probes must not perturb the run");
        assert!(probe.samples() > 0);

        let (sharded_report, sharded_probe) = spec.run_probed_sharded(ProbeConfig::full(32), 3);
        assert_eq!(sharded_report, plain);
        assert_eq!(sharded_probe.samples(), probe.samples());
        assert_eq!(
            sharded_probe.series().injected.samples(),
            probe.series().injected.samples()
        );
        assert_eq!(sharded_probe.sorted_flight(), probe.sorted_flight());
    }

    #[test]
    fn workload_probed_run_matches_unprobed() {
        use dragonfly_workload::WorkloadSpec;
        let mut spec = ExperimentSpec::new(2);
        spec.routing = RoutingKind::Olm;
        spec.traffic = TrafficKind::Workload(WorkloadSpec::interference(72, 1, 0.4, 0.1));
        spec.warmup = 300;
        spec.measure = 600;
        spec.drain = 900;
        let plain = spec.run_workload();
        let (report, probe) = spec.run_workload_probed(ProbeConfig::default());
        assert_eq!(report, plain);
        assert!(probe.samples() > 0);
        let (sharded, sharded_probe) = spec.run_workload_probed_sharded(ProbeConfig::default(), 3);
        assert_eq!(sharded, plain);
        assert_eq!(
            sharded_probe.series().delivered.samples(),
            probe.series().delivered.samples()
        );
    }

    #[test]
    fn batch_run_through_spec() {
        let mut spec = ExperimentSpec::new(2);
        spec.routing = RoutingKind::Rlm;
        spec.traffic = TrafficKind::Mixed {
            global_fraction: 0.5,
            global_offset: 2,
            local_offset: 1,
        };
        let report = spec.run_batch(3, 100_000);
        assert!(!report.deadlock_detected);
        assert!(!report.timed_out);
        assert_eq!(report.packets_delivered, report.packets_total);
    }
}
