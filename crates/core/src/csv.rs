//! Minimal CSV emission for the figure-regeneration binaries.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A very small CSV writer: a header row plus data rows, flushed on drop.
///
/// The workspace intentionally avoids a CSV dependency; the emitted files are simple
/// numeric tables that gnuplot/pandas read directly.
pub struct CsvWriter {
    out: BufWriter<File>,
    columns: usize,
    rows_written: usize,
}

impl CsvWriter {
    /// Create the file and write the header row.
    pub fn create(path: impl AsRef<Path>, header: &str) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        writeln!(out, "{header}")?;
        Ok(Self {
            out,
            columns: header.split(',').count(),
            rows_written: 0,
        })
    }

    /// Append one pre-formatted row (comma-separated, no newline).
    pub fn row(&mut self, row: &str) -> std::io::Result<()> {
        debug_assert_eq!(
            row.split(',').count(),
            self.columns,
            "CSV row arity differs from the header"
        );
        writeln!(self.out, "{row}")?;
        self.rows_written += 1;
        Ok(())
    }

    /// Append a row built from string-able fields.
    pub fn fields<I, S>(&mut self, fields: I) -> std::io::Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let joined = fields
            .into_iter()
            .map(|f| f.as_ref().to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.row(&joined)
    }

    /// Number of data rows written so far.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    /// Flush buffered output.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("dragonfly_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        {
            let mut w = CsvWriter::create(&path, "a,b,c").unwrap();
            w.row("1,2,3").unwrap();
            w.fields(["4", "5", "6"]).unwrap();
            assert_eq!(w.rows_written(), 2);
            w.flush().unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines, vec!["a,b,c", "1,2,3", "4,5,6"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_fails_for_missing_directory() {
        let path = Path::new("/nonexistent-dir-hopefully/x.csv");
        assert!(CsvWriter::create(path, "a").is_err());
    }
}
