//! Offline functional stand-in for the `criterion` benchmark harness.
//!
//! Implements the small API surface used by `crates/bench/benches`: benchmark
//! groups with configurable warm-up and measurement windows, `Bencher::iter`,
//! `black_box`, `BenchmarkId` and the `criterion_group!`/`criterion_main!` macros.
//! Timing is real (monotonic-clock warm-up followed by a measured window); each
//! benchmark prints one `bench:` line with the mean ns/iter, and when the
//! `CRITERION_SHIM_JSON` environment variable names a file, a JSON line per
//! benchmark is appended there so scripts can collect baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a displayable parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    warm_up: Duration,
    measurement: Duration,
    result: &'a mut Option<Sample>,
}

/// One measured benchmark: iteration count and total elapsed time.
#[derive(Debug, Clone, Copy)]
struct Sample {
    iters: u64,
    elapsed: Duration,
}

impl Sample {
    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

impl Bencher<'_> {
    /// Run `f` repeatedly: first for the warm-up window, then for the measurement
    /// window, recording the mean time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        *self.result = Some(Sample {
            iters,
            elapsed: start.elapsed(),
        });
    }
}

/// A named collection of benchmarks sharing warm-up/measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time, not count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark under this group's settings.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.warm_up, self.measurement, |b| f(b));
        self
    }

    /// Run one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.warm_up, self.measurement, |b| f(b, input));
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a benchmark group with default windows (1s warm-up, 3s measurement).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_secs(1),
            measurement: Duration::from_secs(3),
        }
    }

    /// Run a standalone benchmark with the default windows.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(
            &id.to_string(),
            Duration::from_secs(1),
            Duration::from_secs(3),
            |b| f(b),
        );
        self
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    let mut result = None;
    let mut bencher = Bencher {
        warm_up,
        measurement,
        result: &mut result,
    };
    f(&mut bencher);
    match result {
        Some(sample) => {
            let ns = sample.ns_per_iter();
            println!("bench: {name}: {ns:.0} ns/iter ({} iters)", sample.iters);
            if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
                if !path.is_empty() {
                    append_json(&path, name, ns, sample.iters);
                }
            }
        }
        None => println!("bench: {name}: no measurement (closure never called iter)"),
    }
}

fn append_json(path: &str, name: &str, ns: f64, iters: u64) {
    use std::io::Write;
    let line = format!(
        "{{\"name\":\"{}\",\"ns_per_iter\":{ns:.1},\"iters\":{iters}}}\n",
        name.replace('"', "'")
    );
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path);
    if let Ok(mut file) = file {
        let _ = file.write_all(line.as_bytes());
    }
}

/// Bundle benchmark functions into a named group runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_work() {
        let mut result = None;
        let mut b = Bencher {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            result: &mut result,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        let sample = result.expect("iter must record a sample");
        assert!(sample.iters >= 1);
        assert!(sample.elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("run", "vct");
        assert_eq!(id.to_string(), "run/vct");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
