//! Offline no-op stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The derives expand to nothing; the companion `serde` stand-in provides blanket
//! trait impls, so `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` helper
//! attributes compile unchanged without generating any code.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
