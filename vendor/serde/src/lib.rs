//! Offline no-op stand-in for `serde` (see `vendor/README.md`).
//!
//! The traits are satisfied by every type via blanket impls and the derives expand
//! to nothing, so workspace code annotated with `#[derive(Serialize, Deserialize)]`
//! compiles without the real serde.  No serialization behaviour is provided — the
//! workspace emits CSV/JSON through its own hand-rolled writers.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait satisfied by every type (stand-in for `serde::Serialize`).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait satisfied by every type (stand-in for `serde::Deserialize`).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
