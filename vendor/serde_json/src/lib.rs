//! Offline *functional* stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Unlike the no-op `vendor/serde` marker traits, this crate actually emits JSON:
//! [`Value`] is a document tree with correct string escaping and number formatting,
//! and [`ToJson`] is the (much smaller) structural-serialization trait the workspace
//! uses in place of `serde::Serialize` — the report types implement it by hand
//! behind their crates' `json` feature.  [`to_string`] / [`to_string_pretty`]
//! mirror the real `serde_json` entry points, so builds with network access can
//! swap the vendored path for the real crate (the `#[derive(Serialize)]`
//! annotations are already in place) without touching call sites.

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point number (non-finite values emit `null` per JSON).
    Float(f64),
    /// A string (escaped on emission).
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Self {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize without whitespace.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Always keep a decimal point or exponent so the value reads
                    // back as a float (`1.0`, not `1`).
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_sequence(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                })
            }
            Value::Object(pairs) => {
                write_sequence(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (key, value) = &pairs[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1)
                })
            }
        }
    }
}

/// Emit a `[...]`/`{...}` sequence with the shared separator/indentation logic.
fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

/// Emit a JSON string literal with the escapes RFC 8259 requires.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Structural serialization into a [`Value`] tree — the stand-in's analogue of
/// `serde::Serialize`.
pub trait ToJson {
    /// Convert `self` into a JSON document tree.
    fn to_json(&self) -> Value;
}

/// Serialize a value without whitespace (mirrors `serde_json::to_string`).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump()
}

/// Serialize a value with two-space indentation (mirrors
/// `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump_pretty()
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        Value::UInt(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Value {
        Value::UInt(u64::from(*self))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Value {
        Value::Int(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_round_shapes() {
        let v = Value::object([
            ("name", Value::Str("a\"b\\c\n".to_string())),
            ("count", Value::UInt(3)),
            ("ratio", Value::Float(0.5)),
            ("whole", Value::Float(2.0)),
            ("bad", Value::Float(f64::NAN)),
            ("items", Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(
            v.dump(),
            r#"{"name":"a\"b\\c\n","count":3,"ratio":0.5,"whole":2.0,"bad":null,"items":[true,null]}"#
        );
    }

    #[test]
    fn pretty_print_indents_and_balances() {
        let v = Value::object([("xs", Value::Array(vec![Value::UInt(1), Value::UInt(2)]))]);
        let text = v.dump_pretty();
        assert_eq!(text, "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(
            text.matches(['{', '[']).count(),
            text.matches(['}', ']']).count()
        );
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Value::Array(vec![]).dump_pretty(), "[]");
        assert_eq!(Value::Object(vec![]).dump(), "{}");
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut out = String::new();
        write_escaped(&mut out, "a\u{1}b\tc");
        assert_eq!(out, "\"a\\u0001b\\tc\"");
    }

    #[test]
    fn trait_impls_cover_the_workspace_types() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&7usize), "7");
        assert_eq!(to_string(&(-3i64)), "-3");
        assert_eq!(to_string("hi"), "\"hi\"");
        assert_eq!(to_string(&Some(1u64)), "1");
        assert_eq!(to_string(&None::<u64>), "null");
        assert_eq!(to_string(&vec![1u64, 2]), "[1,2]");
        assert_eq!(to_string_pretty(&vec![1u64]), "[\n  1\n]");
    }
}
