//! Integration tests of the workload subsystem: placement properties observed
//! through a full simulation, determinism of the per-job reports, and the two
//! headline scenarios (interference, transient pattern switch).

use dragonfly::core::{
    ExperimentSpec, JobPattern, JobSpec, PlacementPolicy, RoutingKind, TrafficKind, WorkloadReport,
    WorkloadSpec,
};
use dragonfly::topology::DragonflyParams;
use dragonfly::traffic::UNASSIGNED_SLOT;

fn workload_spec(routing: RoutingKind, workload: WorkloadSpec, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = routing;
    spec.traffic = TrafficKind::Workload(workload);
    spec.seed = seed;
    spec.warmup = 1_500;
    spec.measure = 4_000;
    spec.drain = 6_000;
    spec
}

/// A three-job workload exercising every placement policy at once.
fn mixed_placement_workload() -> WorkloadSpec {
    WorkloadSpec::new(vec![
        JobSpec::new(
            "random",
            16,
            PlacementPolicy::Random { seed: 5 },
            JobPattern::Uniform,
            0.1,
        ),
        JobSpec::new(
            "spread",
            24,
            PlacementPolicy::RoundRobinRouters,
            JobPattern::AdversarialLocal(1),
            0.15,
        ),
        JobSpec::new(
            "block",
            16,
            PlacementPolicy::Contiguous,
            JobPattern::AdversarialGlobal(1),
            0.1,
        ),
    ])
}

#[test]
fn placement_is_disjoint_covers_at_most_the_machine_and_is_deterministic() {
    let params = DragonflyParams::new(2);
    let workload = mixed_placement_workload();
    let placement = workload.place(&params);

    // Disjoint: every node belongs to at most one job, and the inverse map agrees.
    let mut owner = vec![None; params.num_nodes()];
    for (j, nodes) in placement.jobs.iter().enumerate() {
        for node in nodes {
            assert!(
                owner[node.index()].is_none(),
                "node {node:?} owned by two jobs"
            );
            owner[node.index()] = Some(j);
            assert_eq!(placement.job_of_node[node.index()], j as u16);
        }
    }
    for (n, job) in owner.iter().enumerate() {
        if job.is_none() {
            assert_eq!(placement.job_of_node[n], UNASSIGNED_SLOT);
        }
    }
    // Coverage never exceeds the machine.
    assert!(placement.assigned_nodes() <= params.num_nodes());
    assert_eq!(placement.assigned_nodes(), 16 + 24 + 16);
    // Deterministic under a fixed seed: recomputing yields the identical placement.
    assert_eq!(placement, workload.place(&params));
}

#[test]
fn per_job_packet_counts_sum_to_the_aggregate() {
    let spec = workload_spec(RoutingKind::Olm, mixed_placement_workload(), 11);
    let mut sim = spec.build_simulation();
    let report = sim.run_steady_state_workload(spec.warmup, spec.measure, spec.drain);
    let stats = &sim.network().stats;

    let generated: u64 = report.jobs.iter().map(|j| j.packets_generated).sum();
    let delivered: u64 = report.jobs.iter().map(|j| j.packets_delivered).sum();
    let measured: u64 = report.jobs.iter().map(|j| j.packets_measured).sum();
    assert_eq!(generated, stats.total_generated);
    assert_eq!(delivered, stats.total_delivered);
    assert_eq!(measured, stats.measured_delivered);
    assert!(generated > 500, "workload generated too little traffic");

    // Phases nest inside jobs the same way.
    for job in &report.jobs {
        let by_phase: u64 = job.phases.iter().map(|p| p.packets_generated).sum();
        assert_eq!(by_phase, job.packets_generated, "job {}", job.name);
    }
}

#[test]
fn workload_reports_are_deterministic_and_static_dyn_agree() {
    let workload = WorkloadSpec::interference(72, 1, 0.24, 0.1);
    let spec = workload_spec(RoutingKind::Piggybacking, workload, 7);
    let first: WorkloadReport = spec.run_workload();
    let second = spec.run_workload();
    assert_eq!(first, second, "same seed must give byte-identical reports");
    let dynamic = spec.run_workload_dyn();
    assert_eq!(first, dynamic, "static and dyn workload engines diverged");
    // The aggregate-only path agrees with the workload aggregate.
    assert_eq!(spec.run(), first.aggregate);
    assert_eq!(spec.run_dyn(), first.aggregate);
}

/// The headline interference result: a minimal-routing aggressor measurably degrades
/// the victim job, and adaptive routing (PB, OLM) reduces the degradation.
#[test]
fn interference_minimal_hurts_victim_and_adaptive_routing_shields_it() {
    // ADVG+1 at 0.24 phits/(node·cycle) loads each group's +1 channel to ~96 %.
    let workload = WorkloadSpec::interference(72, 1, 0.24, 0.1);
    // The near-saturated channel needs a few thousand cycles of queue build-up
    // before the interference shows at full strength.
    let windows = |routing| {
        let mut spec = workload_spec(routing, workload.clone(), 3);
        spec.warmup = 3_000;
        spec.measure = 5_000;
        spec.drain = 8_000;
        spec
    };

    let minimal = windows(RoutingKind::Minimal).run_workload();
    let vic_minimal = minimal.job("victim").unwrap().clone();
    assert!(!minimal.aggregate.deadlock_detected);

    for routing in [RoutingKind::Piggybacking, RoutingKind::Olm] {
        let adaptive = windows(routing).run_workload();
        let vic = adaptive.job("victim").unwrap();
        assert!(!adaptive.aggregate.deadlock_detected);
        // Latency: the victim under the minimal-routed aggressor is much slower.
        assert!(
            vic_minimal.avg_latency_cycles > 1.5 * vic.avg_latency_cycles,
            "{routing:?}: victim avg {} under Minimal vs {} adaptive",
            vic_minimal.avg_latency_cycles,
            vic.avg_latency_cycles
        );
        assert!(
            vic_minimal.p99_latency_cycles > 2.0 * vic.p99_latency_cycles,
            "{routing:?}: victim p99 {} under Minimal vs {} adaptive",
            vic_minimal.p99_latency_cycles,
            vic.p99_latency_cycles
        );
        // Throughput: adaptive routing lets the victim keep (almost) its whole load.
        assert!(
            vic.accepted_load > 0.09,
            "{routing:?}: victim accepted {}",
            vic.accepted_load
        );
        assert!(
            vic.accepted_load > vic_minimal.accepted_load,
            "{routing:?}: victim accepted {} vs {} under Minimal",
            vic.accepted_load,
            vic_minimal.accepted_load
        );
        // The aggressor itself also benefits (it was the saturated one).
        let agg = adaptive.job("aggressor").unwrap();
        assert!(agg.accepted_load >= minimal.job("aggressor").unwrap().accepted_load);
    }
}

/// The headline transient result: per-phase stats across a mid-run UN→ADVG+h switch
/// show minimal routing collapsing in phase 1 while adaptive routing keeps going.
#[test]
fn transient_switch_shows_up_in_per_phase_stats() {
    let h = 2;
    let params = DragonflyParams::new(h);
    let warmup = 1_500u64;
    let measure = 5_000u64;
    let switch_cycle = warmup + measure / 2;
    let workload = WorkloadSpec::transient(params.num_nodes(), 0.25, switch_cycle, h);

    let mut reports = Vec::new();
    for routing in [RoutingKind::Minimal, RoutingKind::Olm] {
        let mut spec = workload_spec(routing, workload.clone(), 13);
        spec.warmup = warmup;
        spec.measure = measure;
        spec.drain = 8_000;
        let report = spec.run_workload();
        assert!(!report.aggregate.deadlock_detected);
        let job = &report.jobs[0];
        assert_eq!(job.phases.len(), 2);
        // Both phases overlap the measurement window by half.
        assert_eq!(job.phases[0].measured_cycles, measure / 2);
        assert_eq!(job.phases[1].measured_cycles, measure / 2);
        assert_eq!(job.phases[0].pattern, "UN");
        assert_eq!(job.phases[1].pattern, format!("ADVG+{h}"));
        // Phase 0 (uniform) is easy for everyone.
        assert!(
            (job.phases[0].accepted_load - 0.25).abs() < 0.06,
            "{routing:?} UN phase accepted {}",
            job.phases[0].accepted_load
        );
        reports.push(report);
    }

    let minimal_advg = &reports[0].jobs[0].phases[1];
    let olm_advg = &reports[1].jobs[0].phases[1];
    // Minimal routing pins near the single-channel bound 1/(2h²+1) = 1/9...
    assert!(
        minimal_advg.accepted_load < 0.16,
        "minimal ADVG phase accepted {}",
        minimal_advg.accepted_load
    );
    // ...while OLM keeps accepting most of the offered load at lower latency.
    assert!(
        olm_advg.accepted_load > minimal_advg.accepted_load * 1.3,
        "OLM {} vs minimal {}",
        olm_advg.accepted_load,
        minimal_advg.accepted_load
    );
    assert!(
        olm_advg.avg_latency_cycles < minimal_advg.avg_latency_cycles,
        "OLM {} vs minimal {}",
        olm_advg.avg_latency_cycles,
        minimal_advg.avg_latency_cycles
    );
}
