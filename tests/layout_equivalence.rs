//! Differential layout-equivalence tier: the engine's observable output is
//! pinned **byte-for-byte** against golden fixtures captured before the
//! struct-of-arrays link-fabric refactor. Any layout change that alters a
//! report — a reordered stat, a perturbed RNG stream, a different peak — fails
//! here with a diff, not somewhere downstream.
//!
//! Coverage: every `RoutingKind` × `FlowControlKind` steady-state run, plus the
//! workload, churn-trace, and batch protocols. Each scenario's fixture holds
//! the full `Debug` rendering of the report *and* its CSV row(s), so both the
//! in-memory struct and the emitted text surface are pinned.
//!
//! Regenerating fixtures (only when an *intentional* behaviour change lands):
//!
//! ```text
//! BLESS_LAYOUT=1 cargo test --release --test layout_equivalence
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use dragonfly::core::{
    ExperimentSpec, FlowControlKind, JobPattern, PlacementPolicy, RoutingKind, TrafficKind,
    WorkloadSpec,
};
use dragonfly::sched::SyntheticTrace;
use dragonfly::stats::{BatchReport, JobReport, PhaseReport, SimReport};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("layout")
}

fn blessing() -> bool {
    std::env::var_os("BLESS_LAYOUT").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Compare `actual` against the named fixture, or rewrite it in bless mode.
fn check(name: &str, actual: &str) {
    let path = fixture_dir().join(format!("{name}.txt"));
    if blessing() {
        std::fs::create_dir_all(fixture_dir()).expect("create fixture dir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); run \
             `BLESS_LAYOUT=1 cargo test --release --test layout_equivalence` \
             at a known-good revision to capture it"
        )
    });
    assert_eq!(
        golden, actual,
        "scenario `{name}` diverged from its golden fixture {path:?} — the \
         layout refactor changed observable output"
    );
}

/// Render a steady-state report: Debug form plus the CSV surface.
fn render_sim(report: &SimReport) -> String {
    let mut out = String::new();
    writeln!(out, "{report:#?}").unwrap();
    writeln!(out, "csv_header: {}", SimReport::csv_header()).unwrap();
    writeln!(out, "csv_row: {}", report.csv_row()).unwrap();
    out
}

fn render_workload(report: &dragonfly::stats::WorkloadReport) -> String {
    let mut out = String::new();
    writeln!(out, "{report:#?}").unwrap();
    writeln!(out, "aggregate_csv_header: {}", SimReport::csv_header()).unwrap();
    writeln!(out, "aggregate_csv_row: {}", report.aggregate.csv_row()).unwrap();
    writeln!(out, "job_csv_header: {}", JobReport::csv_header()).unwrap();
    for row in report.job_csv_rows() {
        writeln!(out, "job_csv_row: {row}").unwrap();
    }
    writeln!(out, "phase_csv_header: {}", PhaseReport::csv_header()).unwrap();
    for row in report.phase_csv_rows() {
        writeln!(out, "phase_csv_row: {row}").unwrap();
    }
    out
}

fn render_batch(report: &BatchReport) -> String {
    let mut out = String::new();
    writeln!(out, "{report:#?}").unwrap();
    writeln!(out, "csv_header: {}", BatchReport::csv_header()).unwrap();
    writeln!(out, "csv_row: {}", report.csv_row()).unwrap();
    out
}

fn steady_spec(routing: RoutingKind, fc: FlowControlKind) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = routing;
    spec.flow_control = fc;
    // ADVG+1 pressures the global links and every adaptive decision point.
    spec.traffic = TrafficKind::AdversarialGlobal(1);
    spec.offered_load = 0.25;
    spec.seed = 71;
    spec.warmup = 300;
    spec.measure = 600;
    spec.drain = 900;
    spec
}

/// Every mechanism × flow control: the steady-state report is byte-stable.
#[test]
fn steady_state_matrix_matches_golden() {
    for fc in [FlowControlKind::Vct, FlowControlKind::Wormhole] {
        for routing in RoutingKind::ALL {
            if fc == FlowControlKind::Wormhole && !routing.supports_wormhole() {
                continue;
            }
            let report = steady_spec(routing, fc).run();
            assert!(
                report.packets_measured > 0,
                "{routing:?}/{fc:?}: nothing measured, the fixture is vacuous"
            );
            let name = format!(
                "steady_{}_{}",
                format!("{routing:?}").to_ascii_lowercase(),
                format!("{fc:?}").to_ascii_lowercase()
            );
            check(&name, &render_sim(&report));
        }
    }
}

/// Uniform traffic under the default spec, as a second traffic-pattern pin.
#[test]
fn steady_state_uniform_matches_golden() {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.offered_load = 0.4;
    spec.seed = 9;
    spec.warmup = 300;
    spec.measure = 600;
    spec.drain = 900;
    let report = spec.run();
    assert!(report.packets_measured > 0);
    check("steady_uniform_olm", &render_sim(&report));
}

/// Workload protocol: per-job and per-phase breakdowns are byte-stable.
#[test]
fn workload_matches_golden() {
    let workload = WorkloadSpec::interference(72, 1, 0.4, 0.1);
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Piggybacking;
    spec.traffic = TrafficKind::Workload(workload);
    spec.seed = 5;
    spec.warmup = 400;
    spec.measure = 800;
    spec.drain = 800;
    let report = spec.run_workload();
    assert_eq!(report.jobs.len(), 2);
    check("workload_interference_pb", &render_workload(&report));
}

/// Churn protocol: trace-driven arrivals/departures and lifecycle columns.
#[test]
fn churn_matches_golden() {
    let trace = SyntheticTrace {
        name: "layout-churn".into(),
        seed: 31,
        jobs: 12,
        mean_interarrival: 300.0,
        mean_duration: 1_200.0,
        sizes: vec![8, 16, 24],
        patterns: vec![JobPattern::Uniform, JobPattern::AllToAll],
        placement: PlacementPolicy::Random { seed: 3 },
        offered_load: 0.12,
    }
    .build();
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::Churn(trace);
    spec.seed = 13;
    spec.measure = 12_000;
    spec.drain = 3_000;
    let report = spec.run_workload();
    assert!(
        report
            .jobs
            .iter()
            .all(|j| j.lifecycle.as_ref().unwrap().completion_cycle.is_some()),
        "every synthetic job should finish inside the horizon"
    );
    check("churn_olm", &render_workload(&report));
}

/// Batch (burst-consumption) protocol.
#[test]
fn batch_matches_golden() {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Rlm;
    spec.traffic = TrafficKind::Mixed {
        global_fraction: 0.5,
        global_offset: 2,
        local_offset: 1,
    };
    spec.seed = 3;
    let report = spec.run_batch(3, 100_000);
    assert!(!report.timed_out);
    check("batch_mixed_rlm", &render_batch(&report));
}

/// The sharded engine stays byte-identical to the (fixture-pinned) sequential
/// one, so the fixtures transitively pin the sharded engine too.
#[test]
fn sharded_matches_sequential_and_golden() {
    let spec = steady_spec(RoutingKind::Olm, FlowControlKind::Vct);
    let sequential = spec.run();
    let sharded = spec.run_sharded(2);
    assert_eq!(sharded, sequential);
    check("steady_olm_vct", &render_sim(&sharded));
}
