//! Large-topology stress tests, ignored by default (ROADMAP larger-h item).
//!
//! The regular suite pins h = 2 so it stays fast in debug builds; these tests
//! exercise the workload subsystem at h = 4 (1 056 nodes) and h = 6 (5 256 nodes).
//! Run them in release mode:
//!
//! ```text
//! cargo test --release --test stress_large -- --ignored
//! ```

use dragonfly::core::{ExperimentSpec, RoutingKind, TrafficKind, WorkloadSpec};
use dragonfly::sched::scenarios::fragmentation_trace;
use dragonfly::topology::DragonflyParams;

fn stress_spec(h: usize, workload: WorkloadSpec) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(h);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::Workload(workload);
    spec.seed = 4242;
    spec.warmup = 2_000;
    spec.measure = 3_000;
    spec.drain = 4_000;
    spec
}

/// Interference workload at h = 4: 1 056 nodes, two jobs interleaved over all 264
/// routers.
#[test]
#[ignore = "large topology (1k nodes); run in release mode"]
fn workload_interference_stress_h4() {
    let params = DragonflyParams::new(4);
    assert_eq!(params.num_nodes(), 1_056);
    let aggressor_load = 0.9 * 2.0 / params.nodes_per_group() as f64;
    let workload = WorkloadSpec::interference(params.num_nodes(), 1, aggressor_load, 0.1);
    let report = stress_spec(4, workload).run_workload();
    assert!(!report.aggregate.deadlock_detected);
    assert_eq!(report.jobs.len(), 2);
    let victim = report.job("victim").unwrap();
    assert!(
        victim.accepted_load > 0.08,
        "victim accepted {}",
        victim.accepted_load
    );
    let generated: u64 = report.jobs.iter().map(|j| j.packets_generated).sum();
    assert!(generated > 10_000);
}

/// Transient workload at h = 6: 5 256 nodes (the 4k+ point beyond the h = 2 debug
/// pins), switching UN→ADVG+h mid-measurement.
#[test]
#[ignore = "large topology (5k nodes); run in release mode"]
fn workload_transient_stress_h6_over_4k_nodes() {
    let params = DragonflyParams::new(6);
    assert_eq!(params.num_nodes(), 5_256);
    let mut spec = stress_spec(
        6,
        WorkloadSpec::transient(params.num_nodes(), 0.2, 3_500, 6),
    );
    spec.warmup = 2_000;
    spec.measure = 3_000;
    spec.drain = 5_000;
    let report = spec.run_workload();
    assert!(!report.aggregate.deadlock_detected);
    let job = &report.jobs[0];
    assert_eq!(job.phases.len(), 2);
    assert_eq!(job.phases[0].measured_cycles, 1_500);
    assert_eq!(job.phases[1].measured_cycles, 1_500);
    // OLM keeps accepting a healthy fraction of the load in the adversarial phase.
    assert!(
        job.phases[1].accepted_load > 0.1,
        "ADVG phase accepted {}",
        job.phases[1].accepted_load
    );
}

/// Churn fragmentation at paper scale (h = 8, 16 512 nodes): the dynamic
/// scheduler packs, churns and re-places jobs on the full-size machine (toward
/// the h = 8+ ROADMAP item).
#[test]
#[ignore = "paper-scale topology (16k nodes); run in release mode"]
fn churn_fragmentation_stress_h8() {
    let params = DragonflyParams::new(8);
    assert_eq!(params.num_nodes(), 16_512);
    let trace = fragmentation_trace(&params, true, 0.75, 0.1, 1_500, 6_000, 4242);
    let mut spec = ExperimentSpec::new(8);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::Churn(trace);
    spec.seed = 4242;
    spec.measure = 7_500; // horizon past the pair's departure at 6 000
    spec.drain = 4_000;
    let report = spec.run_workload();
    assert!(!report.aggregate.deadlock_detected);
    assert_eq!(report.jobs.len(), 14);
    // Every job of the trace ran to completion within the horizon.
    assert!(report
        .jobs
        .iter()
        .all(|j| j.lifecycle.unwrap().completion_cycle.is_some()));
    let victim = report.job("victim").unwrap();
    assert!(
        victim.accepted_load > 0.07,
        "victim accepted {}",
        victim.accepted_load
    );
    // 256 victim nodes × 4 500 resident cycles at 0.1 phits/(node·cycle) over
    // 8-phit packets ≈ 14 000 packets.
    assert!(victim.packets_generated > 10_000);
}
