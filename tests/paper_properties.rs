//! Integration tests asserting the *qualitative* results of the paper at reduced
//! scale: who wins under which traffic pattern, and by roughly what kind of margin.
//!
//! Absolute numbers differ from the paper (h = 2/3 instead of 8, shorter windows),
//! but the orderings these tests pin down are the paper's main claims and must hold
//! at any scale.

use dragonfly::core::{ExperimentSpec, RoutingKind, TrafficKind};

fn spec(h: usize, routing: RoutingKind, traffic: TrafficKind, load: f64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(h);
    spec.routing = routing;
    spec.traffic = traffic;
    spec.offered_load = load;
    spec.warmup = 2_500;
    spec.measure = 3_500;
    spec.drain = 2_000;
    spec.seed = 99;
    spec
}

/// Minimal routing under ADVG+1 is capped near 1/(2h²+1); the adaptive mechanisms and
/// Valiant blow past it (paper Figure 5b).
#[test]
fn advg_minimal_saturates_while_adaptive_mechanisms_do_not() {
    let h = 2;
    let bound = 1.0 / (2.0 * (h * h) as f64 + 1.0);
    let minimal = spec(
        h,
        RoutingKind::Minimal,
        TrafficKind::AdversarialGlobal(1),
        0.5,
    )
    .run();
    assert!(
        minimal.accepted_load < bound * 1.8,
        "minimal accepted {} should be near the {bound:.3} bound",
        minimal.accepted_load
    );
    for kind in [
        RoutingKind::Valiant,
        RoutingKind::Olm,
        RoutingKind::Rlm,
        RoutingKind::Par62,
    ] {
        let report = spec(h, kind, TrafficKind::AdversarialGlobal(1), 0.5).run();
        assert!(
            report.accepted_load > minimal.accepted_load * 2.0,
            "{kind:?} accepted {} should clearly beat minimal's {}",
            report.accepted_load,
            minimal.accepted_load
        );
    }
}

/// Under uniform traffic the adaptive mechanisms stay competitive with minimal
/// routing (paper Figure 5a: they even exceed it at saturation) and do not collapse
/// from excessive misrouting.
#[test]
fn uniform_adaptive_mechanisms_track_minimal() {
    let h = 2;
    let minimal = spec(h, RoutingKind::Minimal, TrafficKind::Uniform, 0.4).run();
    for kind in [
        RoutingKind::Olm,
        RoutingKind::Rlm,
        RoutingKind::Par62,
        RoutingKind::Piggybacking,
    ] {
        let report = spec(h, kind, TrafficKind::Uniform, 0.4).run();
        assert!(
            report.accepted_load > minimal.accepted_load * 0.85,
            "{kind:?} accepted {} vs minimal {}",
            report.accepted_load,
            minimal.accepted_load
        );
    }
}

/// Under ADVL+1 the throughput of mechanisms without local misrouting is limited
/// (1/h for pure minimal; PB escapes only via Valiant detours), while PAR-6/2, RLM
/// and OLM exploit local misrouting (paper Figure 6a at 0% global traffic).
#[test]
fn advl_local_misrouting_mechanisms_beat_the_one_over_h_bound() {
    let h = 2;
    let one_over_h = 1.0 / h as f64;
    let minimal = spec(
        h,
        RoutingKind::Minimal,
        TrafficKind::AdversarialLocal(1),
        0.9,
    )
    .run();
    assert!(
        minimal.accepted_load < one_over_h * 1.25,
        "minimal under ADVL+1 should be capped near 1/h, got {}",
        minimal.accepted_load
    );
    for kind in [RoutingKind::Par62, RoutingKind::Rlm, RoutingKind::Olm] {
        let report = spec(h, kind, TrafficKind::AdversarialLocal(1), 0.9).run();
        assert!(
            report.accepted_load > one_over_h,
            "{kind:?} should beat the 1/h bound, got {}",
            report.accepted_load
        );
    }
}

/// The paper's headline comparison: on the ADVG+h / ADVL+1 mix, the mechanisms with
/// local misrouting beat Piggybacking (Figure 6a).
#[test]
fn mixed_traffic_local_misrouting_beats_piggybacking() {
    let h = 2;
    let mix = TrafficKind::Mixed {
        global_fraction: 0.5,
        global_offset: h,
        local_offset: 1,
    };
    let pb = spec(h, RoutingKind::Piggybacking, mix.clone(), 0.9).run();
    for kind in [RoutingKind::Olm, RoutingKind::Par62, RoutingKind::Rlm] {
        let report = spec(h, kind, mix.clone(), 0.9).run();
        assert!(
            report.accepted_load > pb.accepted_load,
            "{kind:?} accepted {} should beat PB's {}",
            report.accepted_load,
            pb.accepted_load
        );
    }
}

/// RLM and OLM achieve their gains with the baseline 3/2 VCs while PAR-6/2 needs 6
/// local VCs — the central cost claim of the paper, checked against the mechanism
/// metadata and the simulator's configuration validation.
#[test]
fn vc_budget_claims_hold() {
    assert_eq!(RoutingKind::Rlm.local_vcs(), 3);
    assert_eq!(RoutingKind::Olm.local_vcs(), 3);
    assert_eq!(RoutingKind::Par62.local_vcs(), 6);
    // Building PAR-6/2 with only 3 local VCs must be rejected by the simulator.
    let result = std::panic::catch_unwind(|| {
        let config = dragonfly::sim::SimConfig::paper_vct(2); // 3 local VCs
        dragonfly::sim::Simulation::new(
            config,
            RoutingKind::Par62.build(),
            Box::new(dragonfly::traffic::Uniform::new()),
        )
    });
    assert!(result.is_err(), "PAR-6/2 must require 6 local VCs");
}

/// Burst consumption: OLM and RLM drain a mixed burst in (much) less time than PB
/// (paper Figures 6b, ~36-42% of PB's time at full scale).
#[test]
fn burst_consumption_is_faster_with_local_misrouting() {
    let h = 2;
    let mix = TrafficKind::Mixed {
        global_fraction: 0.5,
        global_offset: h,
        local_offset: 1,
    };
    let pb = spec(h, RoutingKind::Piggybacking, mix.clone(), 1.0).run_batch(10, 2_000_000);
    assert!(!pb.timed_out);
    for kind in [RoutingKind::Olm, RoutingKind::Rlm] {
        let report = spec(h, kind, mix.clone(), 1.0).run_batch(10, 2_000_000);
        assert!(!report.timed_out, "{kind:?} timed out");
        assert!(
            (report.consumption_cycles as f64) < pb.consumption_cycles as f64 * 0.95,
            "{kind:?} took {} cycles vs PB's {}",
            report.consumption_cycles,
            pb.consumption_cycles
        );
    }
}

/// Higher misrouting thresholds help adversarial traffic and hurt uniform traffic
/// (the trade-off of Figures 10/11).
#[test]
fn threshold_tradeoff_direction_holds() {
    let h = 2;
    let mut low_adv = spec(h, RoutingKind::Rlm, TrafficKind::AdversarialGlobal(1), 0.6);
    low_adv.threshold = 0.20;
    let mut high_adv = low_adv.clone();
    high_adv.threshold = 0.60;
    let low = low_adv.run();
    let high = high_adv.run();
    assert!(
        high.accepted_load >= low.accepted_load * 0.95,
        "a higher threshold should not hurt ADVG throughput much: {} vs {}",
        high.accepted_load,
        low.accepted_load
    );
    // Misrouting activity must increase with the threshold.
    assert!(
        high.global_misroute_fraction + high.local_misroute_fraction
            >= low.global_misroute_fraction + low.local_misroute_fraction,
        "higher threshold should misroute at least as much"
    );
}
