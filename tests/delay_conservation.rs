//! The delay ledger's cardinal invariant: the six components of every
//! delivered packet's decomposition sum *exactly* to its end-to-end latency —
//! integer conservation with no residual bucket — across every routing
//! mechanism × flow control combination, under seeded random configurations,
//! and for a hand-built scenario whose component values are computed by hand
//! from the pipeline timing.

use dragonfly::core::{
    ExperimentSpec, FlowControlKind, ProbeConfig, ProbeRecorder, RoutingKind, TrafficKind,
};
use dragonfly::probe::DelaySample;
use dragonfly::rng::Rng;
use dragonfly::sim::{BaselineMinimal, Network, SimConfig};
use dragonfly::topology::NodeId;
use dragonfly::traffic::Uniform;

fn delay_probes() -> ProbeConfig {
    ProbeConfig {
        delay: true,
        ..ProbeConfig::full(64)
    }
}

/// Assert the ledger of a finished run upholds conservation and is
/// non-vacuous.
fn assert_conserves(probe: &ProbeRecorder, label: &str) -> u64 {
    let ledger = probe.delay_ledger().expect("delay ledger installed");
    assert!(ledger.folded() > 0, "{label}: no packets folded — vacuous");
    assert_eq!(
        ledger.violations(),
        0,
        "{label}: {} of {} packets violated component conservation",
        ledger.violations(),
        ledger.folded()
    );
    // The class split partitions the folded population.
    assert_eq!(
        ledger.minimal().packets + ledger.misrouted().packets,
        ledger.folded(),
        "{label}: class split does not partition the folded packets"
    );
    ledger.folded()
}

#[test]
fn components_conserve_across_mechanisms_and_flow_controls() {
    for fc in [FlowControlKind::Vct, FlowControlKind::Wormhole] {
        for routing in RoutingKind::ALL {
            if fc == FlowControlKind::Wormhole && !routing.supports_wormhole() {
                continue;
            }
            let mut spec = ExperimentSpec::new(2);
            spec.routing = routing;
            spec.flow_control = fc;
            // ADVG+1 exercises misrouting on the adaptive mechanisms, so the
            // misrouted class and the detour component are both non-trivial.
            spec.traffic = TrafficKind::AdversarialGlobal(1);
            spec.offered_load = 0.25;
            spec.seed = 23;
            spec.warmup = 300;
            spec.measure = 600;
            spec.drain = 900;
            let label = format!("{routing:?}/{fc:?}");
            let (_, probe) = spec.run_probed(delay_probes());
            assert_conserves(&probe, &label);
            let ledger = probe.delay_ledger().unwrap();
            if routing == RoutingKind::Minimal {
                // Minimal routing never leaves the minimal path: no packet
                // lands in the misrouted class and no cycle lands in detour.
                assert_eq!(
                    ledger.misrouted().packets,
                    0,
                    "{label}: minimal routing produced misrouted packets"
                );
                assert_eq!(
                    ledger.minimal().cycles[4],
                    0,
                    "{label}: minimal routing accrued detour cycles"
                );
            }
        }
    }
}

#[test]
fn components_conserve_under_seeded_random_configs() {
    // A seeded property sweep: random mechanism × flow control × load ×
    // traffic, deterministic across runs (the RNG is the repo's own).
    let mut rng = Rng::seed_from(0xD31A_7CAB);
    for case in 0..8u64 {
        let routing = RoutingKind::ALL[(rng.next_u64() % RoutingKind::ALL.len() as u64) as usize];
        let fc = if routing.supports_wormhole() && rng.next_u64().is_multiple_of(2) {
            FlowControlKind::Wormhole
        } else {
            FlowControlKind::Vct
        };
        let load = 0.1 + 0.15 * (rng.next_u64() % 5) as f64;
        let traffic = if rng.next_u64().is_multiple_of(2) {
            TrafficKind::Uniform
        } else {
            TrafficKind::AdversarialGlobal(1)
        };
        let mut spec = ExperimentSpec::new(2);
        spec.routing = routing;
        spec.flow_control = fc;
        spec.traffic = traffic.clone();
        spec.offered_load = load;
        spec.seed = rng.next_u64();
        spec.warmup = 200;
        spec.measure = 400;
        spec.drain = 600;
        let label = format!("case {case}: {routing:?}/{fc:?}/{traffic:?}@{load}");
        let (_, probe) = spec.run_probed(delay_probes());
        assert_conserves(&probe, &label);
    }
}

#[test]
fn sharded_merge_preserves_conservation_and_totals() {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.flow_control = FlowControlKind::Vct;
    spec.traffic = TrafficKind::AdversarialGlobal(1);
    spec.offered_load = 0.25;
    spec.seed = 23;
    spec.warmup = 300;
    spec.measure = 600;
    spec.drain = 900;
    let (_, sequential) = spec.run_probed(delay_probes());
    let folded = assert_conserves(&sequential, "sequential");
    for shards in [2usize, 4] {
        let (_, merged) = spec.run_probed_sharded(delay_probes(), shards);
        let label = format!("{shards} shards");
        assert_eq!(assert_conserves(&merged, &label), folded);
        assert_eq!(
            merged.delay_ledger().unwrap().rows(),
            sequential.delay_ledger().unwrap().rows(),
            "{label}: merged delay rows diverged from the sequential run"
        );
    }
}

/// One packet through an otherwise idle h=2 VCT network, with every component
/// computed by hand from the paper timing (local links 10 cycles, global 100,
/// ejection 1) and the five-phase pipeline order:
///
/// * the head enters the injection buffer in phase B of cycle 0, is granted in
///   phase C and crosses the switch in phase D of the same cycle — so the
///   injection-queue, VC-wait and credit-wait components are all 0,
/// * each downstream hop arrives in phase A and is granted/forwarded the same
///   cycle, so the waits stay 0 and every link's latency lands in
///   `link_transit` (minimal 3-hop path: 10 + 100 + 10, plus the 1-cycle
///   ejection link),
/// * the remaining 7 phits of the 8-phit packet follow the head on
///   consecutive cycles, so `serialization` is exactly 7,
/// * detour is identically 0 under minimal routing.
#[test]
fn hand_built_packet_decomposition_is_pinned() {
    let config = SimConfig::paper_vct(2).with_seed(7);
    let mut net: Network = Network::new(
        config,
        Box::new(BaselineMinimal::new()),
        Box::new(Uniform::new()),
    );
    net.install_probes(delay_probes());
    let src = NodeId(0);
    let dst = NodeId((net.params().num_nodes() - 1) as u32);
    let id = net.packets.alloc(src, dst, 8, 0);
    net.packets.get_mut(id).measured = true;
    net.stats.begin_measurement(0);
    net.sources[0].pending.push_back(id);
    net.stats.record_generated(8, 0);
    net.run(1_000);
    assert!(net.is_drained(), "packet should be delivered");

    let probe = net.take_probe().unwrap();
    let ledger = probe.delay_ledger().expect("delay ledger installed");
    assert_eq!(ledger.folded(), 1);
    assert_eq!(ledger.violations(), 0);
    assert_eq!(ledger.misrouted().packets, 0);
    let minimal = ledger.minimal();
    assert_eq!(minimal.packets, 1);
    // [injection_queue, vc_wait, credit_wait, link_transit, detour,
    //  serialization] — see the doc comment for the arithmetic.
    assert_eq!(
        minimal.cycles,
        [0, 0, 0, 121, 0, 7],
        "hand-computed decomposition diverged"
    );
    // And conservation against the independently-recorded latency stat.
    let latency = net.stats.latency.mean();
    let total: u64 = minimal.cycles.iter().sum();
    assert_eq!(total as f64, latency, "components must sum to the latency");
}

#[test]
fn delay_sample_total_matches_component_sum() {
    let sample = DelaySample {
        components: [1, 2, 3, 4, 5, 6],
        misrouted: false,
        job: 0,
        phase: 0,
    };
    assert_eq!(sample.total(), 21);
}
