//! Workspace-level randomized tests over cross-crate invariants.
//!
//! Originally `proptest` properties; the build environment has no registry access,
//! so each property is checked over seeded random cases drawn from the workspace's
//! own deterministic RNG, covering the same input domains.

use dragonfly::rng::Rng;
use dragonfly::routing::{LinkClass, ParitySignTable, RoutingKind};
use dragonfly::sim::{BaselineMinimal, Packet, PacketId, RouteCtx, RouterView};
use dragonfly::sim::{Network, SimConfig};
use dragonfly::topology::{DragonflyParams, NodeId};
use dragonfly::traffic::{AdversarialGlobal, AdversarialLocal, TrafficPattern, Uniform};

/// Every traffic pattern produces valid, non-self destinations for any source.
#[test]
fn traffic_destinations_are_always_valid() {
    let mut meta = Rng::seed_from(48);
    for _ in 0..48 {
        let h = 2 + (meta.next_u64() % 4) as usize;
        let params = DragonflyParams::new(h);
        let src = NodeId((meta.next_u64() % params.num_nodes() as u64) as u32);
        let mut rng = Rng::seed_from(meta.next_u64() % 1_000);
        let patterns: Vec<Box<dyn TrafficPattern>> = vec![
            Box::new(Uniform::new()),
            Box::new(AdversarialGlobal::new(1)),
            Box::new(AdversarialGlobal::new(h)),
            Box::new(AdversarialLocal::new(1)),
        ];
        for p in &patterns {
            let dst = p.destination(src, &params, &mut rng);
            assert!(dst.index() < params.num_nodes());
            assert_ne!(dst, src);
        }
    }
}

/// The parity-sign table never removes all detours: every router pair of every
/// group size keeps at least h-1 two-hop alternatives.
#[test]
fn parity_sign_detour_guarantee() {
    let mut meta = Rng::seed_from(1337);
    for _ in 0..48 {
        let h = 2 + (meta.next_u64() % 7) as usize;
        let params = DragonflyParams::new(h);
        let routers = params.routers_per_group();
        let from = (meta.next_u64() % routers as u64) as usize;
        let to = (meta.next_u64() % routers as u64) as usize;
        if from == to {
            continue;
        }
        let table = ParitySignTable::new();
        let detours = table.allowed_intermediates(from, to, routers);
        assert!(detours.len() >= h - 1, "{from}->{to}: {detours:?}");
        // Every allowed detour really avoids the forbidden combinations.
        for k in detours {
            assert!(table.allowed(LinkClass::of_hop(from, k), LinkClass::of_hop(k, to)));
        }
    }
}

/// For a freshly-built (idle) network, every mechanism's first routing decision for
/// any packet is the minimal port: with empty queues there is never a reason to
/// misroute.
#[test]
fn idle_network_first_decision_is_minimal() {
    let mut meta = Rng::seed_from(500);
    let params = DragonflyParams::new(2);
    let config = SimConfig::paper_vct(2).with_local_vcs(6);
    let network = Network::new(
        config.clone(),
        Box::new(BaselineMinimal::new()),
        Box::new(Uniform::new()),
    );
    for _ in 0..48 {
        let src = NodeId((meta.next_u64() % params.num_nodes() as u64) as u32);
        let dst = NodeId((meta.next_u64() % params.num_nodes() as u64) as u32);
        if src == dst {
            continue;
        }
        let src_router = params.router_of_node(src);
        let minimal = params.minimal_port(src_router, dst);
        let packet = Packet::new(PacketId(0), src, dst, 8, 0);
        let view = RouterView {
            router: src_router,
            outputs: &network.routers[src_router.index()].outputs,
            params: &params,
            config: &config,
            global_congested: None,
        };
        let ctx = RouteCtx {
            cycle: 0,
            params: &params,
            config: &config,
        };
        let mut rng = Rng::seed_from(meta.next_u64());
        for kind in RoutingKind::ALL {
            if kind == RoutingKind::Valiant {
                // Valiant is oblivious: it always detours through a random group.
                continue;
            }
            let mechanism = kind.build();
            let choice = mechanism
                .route(&ctx, &packet, &view, &mut rng)
                .expect("idle network must always produce a decision");
            assert_eq!(
                choice.port,
                minimal,
                "{} did not choose the minimal port on an idle network",
                kind.name()
            );
        }
    }
}
