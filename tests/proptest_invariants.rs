//! Workspace-level randomized tests over cross-crate invariants.
//!
//! Originally `proptest` properties; the build environment has no registry access,
//! so each property is checked over seeded random cases drawn from the workspace's
//! own deterministic RNG, covering the same input domains.

use dragonfly::rng::Rng;
use dragonfly::routing::{LinkClass, ParitySignTable, RoutingKind};
use dragonfly::sim::{BaselineMinimal, Packet, PacketId, RouteCtx, RouterView};
use dragonfly::sim::{Network, SimConfig};
use dragonfly::topology::{DragonflyParams, NodeId};
use dragonfly::traffic::{AdversarialGlobal, AdversarialLocal, TrafficPattern, Uniform};

/// Every traffic pattern produces valid, non-self destinations for any source.
#[test]
fn traffic_destinations_are_always_valid() {
    let mut meta = Rng::seed_from(48);
    for _ in 0..48 {
        let h = 2 + (meta.next_u64() % 4) as usize;
        let params = DragonflyParams::new(h);
        let src = NodeId((meta.next_u64() % params.num_nodes() as u64) as u32);
        let mut rng = Rng::seed_from(meta.next_u64() % 1_000);
        let patterns: Vec<Box<dyn TrafficPattern>> = vec![
            Box::new(Uniform::new()),
            Box::new(AdversarialGlobal::new(1)),
            Box::new(AdversarialGlobal::new(h)),
            Box::new(AdversarialLocal::new(1)),
        ];
        for p in &patterns {
            let dst = p.destination(src, &params, &mut rng);
            assert!(dst.index() < params.num_nodes());
            assert_ne!(dst, src);
        }
    }
}

/// The parity-sign table never removes all detours: every router pair of every
/// group size keeps at least h-1 two-hop alternatives.
#[test]
fn parity_sign_detour_guarantee() {
    let mut meta = Rng::seed_from(1337);
    for _ in 0..48 {
        let h = 2 + (meta.next_u64() % 7) as usize;
        let params = DragonflyParams::new(h);
        let routers = params.routers_per_group();
        let from = (meta.next_u64() % routers as u64) as usize;
        let to = (meta.next_u64() % routers as u64) as usize;
        if from == to {
            continue;
        }
        let table = ParitySignTable::new();
        let detours = table.allowed_intermediates(from, to, routers);
        assert!(detours.len() >= h - 1, "{from}->{to}: {detours:?}");
        // Every allowed detour really avoids the forbidden combinations.
        for k in detours {
            assert!(table.allowed(LinkClass::of_hop(from, k), LinkClass::of_hop(k, to)));
        }
    }
}

/// For a freshly-built (idle) network, every mechanism's first routing decision for
/// any packet is the minimal port: with empty queues there is never a reason to
/// misroute.
#[test]
fn idle_network_first_decision_is_minimal() {
    let mut meta = Rng::seed_from(500);
    let params = DragonflyParams::new(2);
    let config = SimConfig::paper_vct(2).with_local_vcs(6);
    let network = Network::new(
        config.clone(),
        Box::new(BaselineMinimal::new()),
        Box::new(Uniform::new()),
    );
    for _ in 0..48 {
        let src = NodeId((meta.next_u64() % params.num_nodes() as u64) as u32);
        let dst = NodeId((meta.next_u64() % params.num_nodes() as u64) as u32);
        if src == dst {
            continue;
        }
        let src_router = params.router_of_node(src);
        let minimal = params.minimal_port(src_router, dst);
        let packet = Packet::new(PacketId(0), src, dst, 8, 0);
        let view = RouterView {
            router: src_router,
            outputs: &network.routers[src_router.index()].outputs,
            params: &params,
            config: &config,
            global_congested: None,
        };
        let ctx = RouteCtx {
            cycle: 0,
            params: &params,
            config: &config,
        };
        let mut rng = Rng::seed_from(meta.next_u64());
        for kind in RoutingKind::ALL {
            if kind == RoutingKind::Valiant {
                // Valiant is oblivious: it always detours through a random group.
                continue;
            }
            let mechanism = kind.build();
            let choice = mechanism
                .route(&ctx, &packet, &view, &mut rng)
                .expect("idle network must always produce a decision");
            assert_eq!(
                choice.port,
                minimal,
                "{} did not choose the minimal port on an idle network",
                kind.name()
            );
        }
    }
}

/// Slice-backed ring views (`RingMeta` over a caller-provided pool region)
/// behave exactly like a `VecDeque` bounded at the same capacity, across
/// random push/pop churn that repeatedly wraps the ring.
#[test]
fn ring_meta_view_matches_vecdeque_model() {
    use dragonfly::sim::RingMeta;
    use std::collections::VecDeque;

    let mut meta_rng = Rng::seed_from(0xF00D);
    for case in 0..48 {
        let cap = 1 + meta_rng.gen_index(17);
        let mut ring = RingMeta::new(cap);
        let mut pool = vec![0u64; cap];
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut rng = Rng::seed_from(0x9000 + case);
        let mut next_value = 0u64;
        for _ in 0..400 {
            if ring.len() < cap && rng.bernoulli(0.55) {
                ring.push_back(&mut pool, next_value);
                model.push_back(next_value);
                next_value += 1;
            } else if !model.is_empty() {
                assert_eq!(ring.pop_front(&pool), model.pop_front());
            }
            assert_eq!(ring.len(), model.len());
            assert_eq!(ring.is_empty(), model.is_empty());
            assert_eq!(ring.front(&pool), model.front());
            assert_eq!(ring.back(&pool), model.back());
            assert!(ring.iter(&pool).copied().eq(model.iter().copied()));
        }
    }
}

/// Filling a ring to capacity and wrapping it many times never corrupts FIFO
/// order: the head index wraps by compare-and-subtract, not a power-of-two
/// mask, so every capacity — not just powers of two — must survive.
#[test]
fn ring_meta_wraparound_at_capacity() {
    use dragonfly::sim::RingMeta;

    for cap in [1usize, 2, 3, 5, 7, 8, 13, 100, 101] {
        let mut ring = RingMeta::new(cap);
        let mut pool = vec![0u64; cap];
        // Fill to capacity, then cycle one-in-one-out for several laps.
        for v in 0..cap as u64 {
            ring.push_back(&mut pool, v);
        }
        assert_eq!(ring.len(), cap);
        for v in cap as u64..cap as u64 * 7 {
            assert_eq!(ring.pop_front(&pool), Some(v - cap as u64));
            ring.push_back(&mut pool, v);
            assert_eq!(ring.len(), cap);
        }
        assert_eq!(ring.high_water(), cap);
    }
}

/// The packed metadata word round-trips all four fields at random states.
#[test]
fn ring_meta_packed_word_roundtrip_random() {
    use dragonfly::sim::RingMeta;

    let mut meta_rng = Rng::seed_from(0xBEEF);
    for _ in 0..48 {
        let cap = 1 + meta_rng.gen_index(u16::MAX as usize);
        let mut ring = RingMeta::new(cap);
        let mut pool = vec![0u8; cap];
        let pushes = meta_rng.gen_index(cap.min(50) + 1);
        let pops = meta_rng.gen_index(pushes + 1);
        for _ in 0..pushes {
            ring.push_back(&mut pool, 0);
        }
        for _ in 0..pops {
            ring.pop_front(&pool);
        }
        let bits = ring.to_bits();
        let back = RingMeta::from_bits(bits);
        assert_eq!(back.capacity(), cap);
        assert_eq!(back.len(), pushes - pops);
        assert_eq!(back.head(), ring.head());
        assert_eq!(back.high_water(), pushes);
        assert_eq!(back.to_bits(), bits);
    }
}

/// The high-water mark is monotone under arbitrary churn and always equals the
/// historical maximum occupancy (never the current one).
#[test]
fn ring_meta_high_water_is_monotone_max() {
    use dragonfly::sim::RingMeta;

    let mut meta_rng = Rng::seed_from(0xCAFE);
    for case in 0..48 {
        let cap = 1 + meta_rng.gen_index(31);
        let mut ring = RingMeta::new(cap);
        let mut pool = vec![0u32; cap];
        let mut rng = Rng::seed_from(7_000 + case);
        let mut max_seen = 0usize;
        let mut last_hw = 0usize;
        for _ in 0..300 {
            if ring.len() < cap && rng.bernoulli(0.5) {
                ring.push_back(&mut pool, 1);
            } else if !ring.is_empty() {
                ring.pop_front(&pool);
            }
            max_seen = max_seen.max(ring.len());
            assert!(ring.high_water() >= last_hw, "high water went backwards");
            last_hw = ring.high_water();
            assert_eq!(ring.high_water(), max_seen);
        }
    }
}
