//! Workspace-level property-based tests over cross-crate invariants.

use dragonfly::routing::{LinkClass, ParitySignTable, RoutingKind};
use dragonfly::sim::{BaselineMinimal, Packet, PacketId, RouteCtx, RouterView};
use dragonfly::sim::{Network, SimConfig};
use dragonfly::topology::{DragonflyParams, NodeId};
use dragonfly::traffic::{AdversarialGlobal, AdversarialLocal, TrafficPattern, Uniform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every traffic pattern produces valid, non-self destinations for any source.
    #[test]
    fn traffic_destinations_are_always_valid(h in 2usize..=5, src_raw in 0u32..100_000, seed in 0u64..1_000) {
        let params = DragonflyParams::new(h);
        let src = NodeId(src_raw % params.num_nodes() as u32);
        let mut rng = dragonfly::rng::Rng::seed_from(seed);
        let patterns: Vec<Box<dyn TrafficPattern>> = vec![
            Box::new(Uniform::new()),
            Box::new(AdversarialGlobal::new(1)),
            Box::new(AdversarialGlobal::new(h)),
            Box::new(AdversarialLocal::new(1)),
        ];
        for p in &patterns {
            let dst = p.destination(src, &params, &mut rng);
            prop_assert!(dst.index() < params.num_nodes());
            prop_assert_ne!(dst, src);
        }
    }

    /// The parity-sign table never removes all detours: every router pair of every
    /// group size keeps at least h-1 two-hop alternatives.
    #[test]
    fn parity_sign_detour_guarantee(h in 2usize..=8, from in 0usize..16, to in 0usize..16) {
        let params = DragonflyParams::new(h);
        let routers = params.routers_per_group();
        let from = from % routers;
        let to = to % routers;
        if from == to {
            return Ok(());
        }
        let table = ParitySignTable::new();
        let detours = table.allowed_intermediates(from, to, routers);
        prop_assert!(detours.len() >= h - 1, "{from}->{to}: {detours:?}");
        // Every allowed detour really avoids the forbidden combinations.
        for k in detours {
            prop_assert!(table.allowed(
                LinkClass::of_hop(from, k),
                LinkClass::of_hop(k, to),
            ));
        }
    }

    /// For a freshly-built (idle) network, every mechanism's first routing decision for
    /// any packet is the minimal port: with empty queues there is never a reason to
    /// misroute.
    #[test]
    fn idle_network_first_decision_is_minimal(seed in 0u64..500, src_raw in 0u32..100_000, dst_raw in 0u32..100_000) {
        let params = DragonflyParams::new(2);
        let src = NodeId(src_raw % params.num_nodes() as u32);
        let dst = NodeId(dst_raw % params.num_nodes() as u32);
        if src == dst {
            return Ok(());
        }
        let config = SimConfig::paper_vct(2).with_local_vcs(6);
        let network = Network::new(
            config.clone(),
            Box::new(BaselineMinimal::new()),
            Box::new(Uniform::new()),
        );
        let src_router = params.router_of_node(src);
        let minimal = params.minimal_port(src_router, dst);
        let packet = Packet::new(PacketId(0), src, dst, 8, 0);
        let view = RouterView {
            router: src_router,
            outputs: &network.routers[src_router.index()].outputs,
            params: &params,
            config: &config,
            global_congested: None,
        };
        let ctx = RouteCtx { cycle: 0, params: &params, config: &config };
        let mut rng = dragonfly::rng::Rng::seed_from(seed);
        for kind in RoutingKind::ALL {
            if kind == RoutingKind::Valiant {
                // Valiant is oblivious: it always detours through a random group.
                continue;
            }
            let mechanism = kind.build();
            let choice = mechanism
                .route(&ctx, &packet, &view, &mut rng)
                .expect("idle network must always produce a decision");
            prop_assert_eq!(
                choice.port, minimal,
                "{} did not choose the minimal port on an idle network", kind.name()
            );
        }
    }
}
