//! The sharded engine's cardinal invariant: partitioning one simulation into
//! per-group shards (message-passing global links, per-cycle barrier) produces
//! **byte-identical** reports to the sequential engine — for every routing
//! mechanism × flow control combination, for every run protocol (steady-state,
//! workload, churn trace), and independently of the shard count.

use dragonfly::core::{
    ExperimentSpec, FlowControlKind, JobPattern, PlacementPolicy, RoutingKind, TrafficKind,
    WorkloadSpec,
};
use dragonfly::sched::SyntheticTrace;

fn steady_spec(routing: RoutingKind, fc: FlowControlKind) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = routing;
    spec.flow_control = fc;
    // ADVG+1 exercises the boundary links hard: at h = 2 most minimal paths and
    // every Valiant detour cross groups (and therefore shards).
    spec.traffic = TrafficKind::AdversarialGlobal(1);
    spec.offered_load = 0.25;
    spec.seed = 23;
    spec.warmup = 300;
    spec.measure = 600;
    spec.drain = 900;
    spec
}

/// Every mechanism × flow control combo: sharded ≡ sequential, byte for byte.
#[test]
fn every_mechanism_and_flow_control_is_shard_invariant() {
    for fc in [FlowControlKind::Vct, FlowControlKind::Wormhole] {
        for routing in RoutingKind::ALL {
            if fc == FlowControlKind::Wormhole && !routing.supports_wormhole() {
                continue;
            }
            let spec = steady_spec(routing, fc);
            let sequential = spec.run();
            assert!(
                sequential.packets_measured > 0,
                "{routing:?}/{fc:?}: nothing measured, the pin is vacuous"
            );
            for shards in [1, 2, 4] {
                let sharded = spec.run_sharded(shards);
                assert_eq!(
                    sharded, sequential,
                    "{routing:?} under {fc:?} diverged with {shards} shards"
                );
            }
        }
    }
}

/// The memory-telemetry fields are exercised and shard-invariant too (they are
/// part of the report equality above, but pin that they are non-trivial).
#[test]
fn telemetry_peaks_are_populated_and_shard_invariant() {
    let spec = steady_spec(RoutingKind::Olm, FlowControlKind::Vct);
    let sequential = spec.run();
    assert!(sequential.peak_in_flight_packets > 0);
    assert!(sequential.peak_buffered_phits > 0);
    assert!(sequential.peak_vc_occupancy > 0);
    // A single VC never exceeds the largest configured buffer.
    assert!(sequential.peak_vc_occupancy <= 256);
    let sharded = spec.run_sharded(3);
    assert_eq!(
        sharded.peak_in_flight_packets,
        sequential.peak_in_flight_packets
    );
    assert_eq!(sharded.peak_buffered_phits, sequential.peak_buffered_phits);
    assert_eq!(sharded.peak_vc_occupancy, sequential.peak_vc_occupancy);
}

/// Workload protocol: per-job and per-phase breakdowns survive sharding.
#[test]
fn workload_reports_are_shard_invariant() {
    let workload = WorkloadSpec::interference(72, 1, 0.4, 0.1);
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Piggybacking;
    spec.traffic = TrafficKind::Workload(workload);
    spec.seed = 5;
    spec.warmup = 400;
    spec.measure = 800;
    spec.drain = 800;
    let sequential = spec.run_workload();
    assert_eq!(sequential.jobs.len(), 2);
    for shards in [1, 2, 4] {
        assert_eq!(
            spec.run_workload_sharded(shards),
            sequential,
            "workload diverged with {shards} shards"
        );
    }
}

/// Churn protocol: trace-driven arrivals/departures, placement and volume-bound
/// completion (driven by the cross-shard delivery-feedback broadcast) survive
/// sharding, and the shard count is invisible in the report.
#[test]
fn churn_traces_are_shard_count_invariant() {
    let trace = SyntheticTrace {
        name: "shardy".into(),
        seed: 31,
        jobs: 12,
        mean_interarrival: 300.0,
        mean_duration: 1_200.0,
        sizes: vec![8, 16, 24],
        patterns: vec![JobPattern::Uniform, JobPattern::AllToAll],
        placement: PlacementPolicy::Random { seed: 3 },
        offered_load: 0.12,
    }
    .build();
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::Churn(trace);
    spec.seed = 13;
    spec.measure = 12_000; // horizon
    spec.drain = 3_000;

    let sequential = spec.run_workload();
    assert!(
        sequential
            .jobs
            .iter()
            .all(|j| j.lifecycle.as_ref().unwrap().completion_cycle.is_some()),
        "every synthetic job should finish inside the horizon"
    );
    let two = spec.run_workload_sharded(2);
    let four = spec.run_workload_sharded(4);
    assert_eq!(two, sequential, "churn diverged with 2 shards");
    assert_eq!(four, sequential, "churn diverged with 4 shards");
    // Shard-count invariance, stated directly.
    assert_eq!(two, four);
}

/// Burst-consumption protocol, whose preload and drain loops run across the
/// shard barrier as well.
#[test]
fn batch_runs_are_shard_invariant() {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Rlm;
    spec.traffic = TrafficKind::Mixed {
        global_fraction: 0.5,
        global_offset: 2,
        local_offset: 1,
    };
    spec.seed = 3;
    let sequential = spec.run_batch(3, 100_000);
    assert!(!sequential.timed_out);
    for shards in [2, 3] {
        assert_eq!(
            spec.run_batch_sharded(3, 100_000, shards),
            sequential,
            "batch diverged with {shards} shards"
        );
    }
}
