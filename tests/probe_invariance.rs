//! The probe subsystem's cardinal invariants:
//!
//! 1. **Read-only** — installing probes never perturbs a run.  Every field of
//!    every report is byte-identical with probes on and off, for every routing
//!    mechanism × flow control combination and for the workload/churn
//!    protocols (probes share no state with routing, consume no RNG, and only
//!    read what the cycle loop already computed).
//! 2. **Shard-invariant output** — the probe files a sharded run emits are
//!    byte-identical to the sequential run's, independent of the shard count.
//!    Every counter is attributed to exactly one owner router/link, the
//!    flight sample is a pure hash of `(source, generation cycle)`, and
//!    emission sorts flight events into a canonical order.  The one documented
//!    exception is the diagnostics series (`*_diag.csv`): arena growth and
//!    ring high-water marks are genuinely engine-dependent.

use dragonfly::core::{
    ExperimentSpec, FlowControlKind, ProbeConfig, RoutingKind, TrafficKind, WorkloadSpec,
};
use dragonfly::probe::DelayLedger;
use std::path::{Path, PathBuf};

fn steady_spec(routing: RoutingKind, fc: FlowControlKind) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = routing;
    spec.flow_control = fc;
    // ADVG+1 exercises misrouting, the PB board and (in sharded runs) the
    // boundary links; the probe hooks on all of them must stay passive.
    spec.traffic = TrafficKind::AdversarialGlobal(1);
    spec.offered_load = 0.25;
    spec.seed = 23;
    spec.warmup = 300;
    spec.measure = 600;
    spec.drain = 900;
    spec
}

/// Probe configuration with every instrument on, including the delay ledger
/// (off in `ProbeConfig::full` so the bench pair isolates its fold cost).
fn full_probes() -> ProbeConfig {
    ProbeConfig {
        delay: true,
        ..ProbeConfig::full(64)
    }
}

/// Every instrument on **plus** the armed anomaly detectors and the trace
/// export — the active layer on top of the passive recorder.
fn active_probes() -> ProbeConfig {
    ProbeConfig {
        delay: true,
        ..ProbeConfig::full_active(64)
    }
}

#[test]
fn probes_never_perturb_any_mechanism_or_flow_control() {
    for fc in [FlowControlKind::Vct, FlowControlKind::Wormhole] {
        for routing in RoutingKind::ALL {
            if fc == FlowControlKind::Wormhole && !routing.supports_wormhole() {
                continue;
            }
            let spec = steady_spec(routing, fc);
            let plain = spec.run();
            assert!(
                plain.packets_measured > 0,
                "{routing:?}/{fc:?}: nothing measured, the pin is vacuous"
            );
            let (probed, probe) = spec.run_probed(full_probes());
            assert_eq!(
                probed, plain,
                "{routing:?}/{fc:?}: probes perturbed the report"
            );
            assert!(
                probe.samples() > 0,
                "{routing:?}/{fc:?}: probes recorded nothing"
            );
        }
    }
}

#[test]
fn probes_never_perturb_workload_and_churn_runs() {
    use dragonfly::core::{Completion, JobPattern, PlacementPolicy, Trace, TraceJob};

    let mut workload = steady_spec(RoutingKind::Olm, FlowControlKind::Vct);
    workload.traffic = TrafficKind::Workload(WorkloadSpec::interference(72, 1, 0.4, 0.1));
    let plain = workload.run_workload();
    let (probed, probe) = workload.run_workload_probed(full_probes());
    assert_eq!(probed, plain, "probes perturbed the workload report");
    assert!(probe.samples() > 0);

    let mut churn = steady_spec(RoutingKind::Piggybacking, FlowControlKind::Vct);
    churn.traffic = TrafficKind::Churn(Trace::new(
        "probe-pin",
        vec![
            TraceJob {
                name: "a".into(),
                arrival: 0,
                size: 24,
                placement: PlacementPolicy::Contiguous,
                pattern: JobPattern::AllToAll,
                offered_load: 0.15,
                completion: Completion::Duration(1_200),
            },
            TraceJob {
                name: "b".into(),
                arrival: 500,
                size: 24,
                placement: PlacementPolicy::Random { seed: 5 },
                pattern: JobPattern::Uniform,
                offered_load: 0.1,
                completion: Completion::Duration(800),
            },
        ],
    ));
    churn.measure = 4_000;
    churn.drain = 2_000;
    let plain = churn.run_workload();
    let (probed, probe) = churn.run_workload_probed(full_probes());
    assert_eq!(probed, plain, "probes perturbed the churn report");
    assert!(probe.samples() > 0);
}

/// Fresh scratch directory under the target-local temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dragonfly_probe_invariance_{name}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Read every emitted probe file keyed by file name, split into the pinned set
/// and the diagnostics exception.
fn read_outputs(dir: &Path) -> (Vec<(String, Vec<u8>)>, Vec<String>) {
    let mut pinned = Vec::new();
    let mut diag = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.ends_with("_diag.csv") {
            diag.push(name);
        } else {
            pinned.push((name, std::fs::read(&path).unwrap()));
        }
    }
    (pinned, diag)
}

#[test]
fn probe_files_are_byte_identical_across_shard_counts() {
    let spec = steady_spec(RoutingKind::Olm, FlowControlKind::Vct);
    let plain = spec.run();

    let (report, probe) = spec.run_probed(full_probes());
    assert_eq!(report, plain);
    let seq_dir = scratch("seq");
    probe.write_all(&seq_dir, "probe").unwrap();
    let (sequential, seq_diag) = read_outputs(&seq_dir);
    assert!(
        sequential.iter().any(|(n, _)| n == "probe_series.csv"),
        "series output missing"
    );
    assert!(
        sequential.iter().any(|(n, _)| n == "probe_flight.jsonl"),
        "flight output missing"
    );
    assert!(
        sequential.iter().any(|(n, _)| n == "probe_heatmap.csv"),
        "heatmap output missing"
    );
    assert!(
        sequential
            .iter()
            .any(|(n, b)| n == "probe_delay.csv" && b.len() > DelayLedger::CSV_HEADER.len() + 1),
        "delay output missing or empty — the delay half of the pin is vacuous"
    );
    assert!(
        sequential.iter().any(|(n, _)| n == "probe_delay.jsonl"),
        "delay JSONL output missing"
    );
    assert_eq!(seq_diag, vec!["probe_diag.csv".to_string()]);

    for shards in [2, 4] {
        let (report, probe) = spec.run_probed_sharded(full_probes(), shards);
        assert_eq!(report, plain, "{shards} shards: report diverged");
        let dir = scratch(&format!("shards{shards}"));
        probe.write_all(&dir, "probe").unwrap();
        let (sharded, diag) = read_outputs(&dir);
        assert_eq!(diag, seq_diag, "{shards} shards: diag file set diverged");
        assert_eq!(
            sharded.len(),
            sequential.len(),
            "{shards} shards: pinned file set diverged"
        );
        for ((name, bytes), (seq_name, seq_bytes)) in sharded.iter().zip(&sequential) {
            assert_eq!(name, seq_name);
            assert_eq!(
                bytes, seq_bytes,
                "{shards} shards: {name} is not byte-identical to the sequential run"
            );
        }
    }
}

#[test]
fn detectors_never_perturb_the_report() {
    // Armed detectors (and the trace export) ride the same read-only hooks as
    // the passive instruments: every report field must stay byte-identical.
    for routing in [RoutingKind::Minimal, RoutingKind::Olm, RoutingKind::Rlm] {
        let spec = steady_spec(routing, FlowControlKind::Vct);
        let plain = spec.run();
        let (probed, probe) = spec.run_probed(active_probes());
        assert_eq!(
            probed, plain,
            "{routing:?}: armed detectors perturbed the report"
        );
        assert!(probe.samples() > 0);
    }
}

/// A scenario engineered to trip the detectors: ADVG+1 at a saturating load
/// collapses minimal routing's delivered/injected ratio, and the collapse
/// threshold is set so high that any deficit at all trips it.
fn anomalous_spec() -> (ExperimentSpec, ProbeConfig) {
    let mut spec = steady_spec(RoutingKind::Minimal, FlowControlKind::Vct);
    spec.offered_load = 0.8;
    let mut probes = active_probes();
    probes.detect.window = 4;
    probes.detect.collapse_pct = 100;
    probes.detect.min_window_injected = 16;
    (spec, probes)
}

#[test]
fn trigger_bundle_and_manifest_are_byte_identical_across_shard_counts() {
    let (spec, probes) = anomalous_spec();
    let (report, probe) = spec.run_probed(probes.clone());
    assert!(
        !probe.trips().is_empty(),
        "the forced-anomaly scenario must trip at least one detector, or this \
         pin is vacuous"
    );
    let manifest = spec.manifest_with_report("anomaly", &report);
    let seq_dir = scratch("anomaly_seq");
    probe
        .write_all_with_manifest(&seq_dir, "anomaly", &manifest)
        .unwrap();
    let (sequential, _) = read_outputs(&seq_dir);
    for required in [
        "anomaly_trigger.jsonl",
        "anomaly_trigger_series.csv",
        "anomaly_trigger_flight.jsonl",
        "anomaly_trigger_heatmap.csv",
        "anomaly_trigger_delay.csv",
        "anomaly_trace.json",
        "anomaly_manifest.json",
    ] {
        assert!(
            sequential.iter().any(|(n, _)| n == required),
            "{required} missing from the trigger bundle"
        );
    }

    for shards in [2, 4] {
        let (sharded_report, probe) = spec.run_probed_sharded(probes.clone(), shards);
        assert_eq!(sharded_report, report, "{shards} shards: report diverged");
        let dir = scratch(&format!("anomaly_shards{shards}"));
        probe
            .write_all_with_manifest(&dir, "anomaly", &manifest)
            .unwrap();
        let (sharded, _) = read_outputs(&dir);
        assert_eq!(sharded.len(), sequential.len());
        for ((name, bytes), (seq_name, seq_bytes)) in sharded.iter().zip(&sequential) {
            assert_eq!(name, seq_name);
            assert_eq!(
                bytes, seq_bytes,
                "{shards} shards: {name} is not byte-identical to the sequential run"
            );
        }
    }
}
