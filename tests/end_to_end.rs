//! Cross-crate integration tests: every routing mechanism, both flow controls, all
//! main traffic patterns, on a small but complete Dragonfly.
//!
//! These tests exercise the full stack (topology → traffic → simulator → routing →
//! statistics → experiment harness) exactly the way the figure binaries do, just at a
//! reduced scale so they stay fast in debug builds.

use dragonfly::core::{ExperimentSpec, FlowControlKind, RoutingKind, TrafficKind};

fn quick_spec(
    routing: RoutingKind,
    traffic: TrafficKind,
    flow: FlowControlKind,
    load: f64,
) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = routing;
    spec.traffic = traffic;
    spec.flow_control = flow;
    spec.offered_load = load;
    spec.warmup = 800;
    spec.measure = 1_500;
    spec.drain = 2_500;
    spec.seed = 1234;
    spec
}

#[test]
fn every_mechanism_delivers_uniform_traffic_under_vct() {
    for kind in RoutingKind::ALL {
        let report = quick_spec(kind, TrafficKind::Uniform, FlowControlKind::Vct, 0.1).run();
        assert!(!report.deadlock_detected, "{kind:?} deadlocked");
        assert!(
            report.packets_measured > 50,
            "{kind:?} delivered too few packets: {}",
            report.packets_measured
        );
        assert!(
            (report.accepted_load - 0.1).abs() < 0.05,
            "{kind:?} accepted {} at offered 0.1",
            report.accepted_load
        );
        assert!(report.avg_hops <= 8.0, "{kind:?} exceeded the 8-hop bound");
        assert_eq!(report.routing, kind.name());
    }
}

#[test]
fn wormhole_capable_mechanisms_deliver_under_wormhole() {
    for kind in RoutingKind::ALL {
        if !kind.supports_wormhole() {
            continue;
        }
        let report = quick_spec(kind, TrafficKind::Uniform, FlowControlKind::Wormhole, 0.1).run();
        assert!(!report.deadlock_detected, "{kind:?} deadlocked under WH");
        assert!(
            report.packets_measured > 10,
            "{kind:?}: {}",
            report.packets_measured
        );
        assert!(
            (report.accepted_load - 0.1).abs() < 0.06,
            "{kind:?}: {}",
            report.accepted_load
        );
    }
}

#[test]
fn adaptive_mechanisms_survive_adversarial_saturation() {
    // Offered load of 1.0 under ADVG+h is far beyond what any mechanism can accept;
    // the point is that the adaptive mechanisms neither deadlock nor stop delivering.
    for kind in [RoutingKind::Par62, RoutingKind::Rlm, RoutingKind::Olm] {
        let report = quick_spec(
            kind,
            TrafficKind::AdversarialGlobal(2),
            FlowControlKind::Vct,
            1.0,
        )
        .run();
        assert!(
            !report.deadlock_detected,
            "{kind:?} deadlocked at saturation"
        );
        assert!(
            report.accepted_load > 0.08,
            "{kind:?} collapsed under ADVG+h: {}",
            report.accepted_load
        );
    }
}

#[test]
fn adversarial_local_traffic_is_survived_by_all_mechanisms() {
    for kind in RoutingKind::ALL {
        let report = quick_spec(
            kind,
            TrafficKind::AdversarialLocal(1),
            FlowControlKind::Vct,
            0.4,
        )
        .run();
        assert!(
            !report.deadlock_detected,
            "{kind:?} deadlocked under ADVL+1"
        );
        assert!(report.packets_measured > 50, "{kind:?}");
    }
}

#[test]
fn burst_mode_delivers_every_packet_for_every_mechanism() {
    for kind in RoutingKind::ALL {
        let spec = quick_spec(
            kind,
            TrafficKind::Mixed {
                global_fraction: 0.5,
                global_offset: 2,
                local_offset: 1,
            },
            FlowControlKind::Vct,
            1.0,
        );
        let report = spec.run_batch(3, 300_000);
        assert!(
            !report.deadlock_detected,
            "{kind:?} deadlocked in burst mode"
        );
        assert!(!report.timed_out, "{kind:?} timed out in burst mode");
        assert_eq!(
            report.packets_delivered, report.packets_total,
            "{kind:?} lost packets"
        );
        assert!(report.consumption_cycles > 0);
    }
}

/// Paper-scale wormhole/ADVL point (ROADMAP wormhole-scenario item): the PERCS-like
/// WH configuration at the paper's h = 8 under adversarial-local traffic, where
/// local-misrouting mechanisms must beat the 1/h minimal bound.
///
/// Ignored by default — run with `cargo test --release -- --ignored wh_advl`.
#[test]
#[ignore = "paper scale (16k nodes); run in release mode"]
fn wh_advl_paper_scale_point() {
    let mut spec = ExperimentSpec::new(8);
    spec.routing = RoutingKind::Rlm;
    spec.flow_control = FlowControlKind::Wormhole;
    spec.traffic = TrafficKind::AdversarialLocal(1);
    spec.offered_load = 0.3;
    spec.warmup = 3_000;
    spec.measure = 4_000;
    spec.drain = 6_000;
    spec.seed = 29;
    let report = spec.run();
    assert!(!report.deadlock_detected);
    // Minimal routing would cap at 1/h = 0.125; RLM's local misrouting must beat it.
    assert!(
        report.accepted_load > 0.15,
        "RLM under WH/ADVL+1 accepted only {}",
        report.accepted_load
    );
    assert!(report.local_misroute_fraction > 0.1);
}

#[test]
fn reports_serialize_to_csv_rows() {
    let report = quick_spec(
        RoutingKind::Olm,
        TrafficKind::Uniform,
        FlowControlKind::Vct,
        0.1,
    )
    .run();
    let row = report.csv_row();
    assert_eq!(
        row.split(',').count(),
        dragonfly::stats::SimReport::csv_header().split(',').count()
    );
    assert!(row.starts_with("OLM,UN,"));
}
