//! Pins the hot-path memory invariant: after warm-up, the steady-state cycle
//! loop performs **zero heap allocations** for every routing mechanism × flow
//! control combination.
//!
//! The guarantee rests on three pieces (see ARCHITECTURE.md, "Memory layout of
//! the hot path"): the generational packet slab reuses freed slots, VC buffers
//! and link pipelines run on fixed-capacity rings whose backing store is
//! reserved at construction, and all per-cycle bookkeeping (`active_links`,
//! `route_scratch`, candidate lists in `route()`, ...) lives in preallocated
//! or stack-inline storage.
//!
//! The offered load (0.1 uniform) is deliberately below every mechanism's
//! saturation point: above saturation the *source queues* grow without bound
//! by design, which is a property of the load, not of the cycle loop.
//!
//! Probes are installed with every instrument enabled (stride-64 time series,
//! flight recorder, heatmaps) **and every anomaly detector armed**: all probe
//! storage — including the detector bank's trip list — is reserved at
//! installation and overflow drops-and-counts, so the observability layer must
//! not cost a single allocation on the hot path either.
//!
//! The counting allocator is process-global, so this file deliberately holds a
//! SINGLE test function: a second test running in parallel would pollute the
//! counter and make the assertion meaningless.  Runs are fully deterministic
//! (fixed seeds), so a pass here is reproducible, not probabilistic.
//!
//! Beyond the whole-cycle zero, the test attributes allocator activity to the
//! individual phases through `step_with_phase_hook` and asserts the zero
//! separately for arrivals, injection, routing, switch and bookkeeping — a
//! regression that allocates in exactly one phase fails with that phase's
//! name, not just "some cycle allocated".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dragonfly::core::{ExperimentSpec, FlowControlKind, RoutingKind, TrafficKind};
use dragonfly::probe::ProbeConfig;
use dragonfly::traffic::BernoulliInjection;

/// Forwards to the system allocator, counting every call that can return a
/// fresh heap block (alloc, alloc_zeroed, realloc).  Deallocations are not
/// counted: the invariant is "no allocations", which also forbids free+alloc
/// churn pairs.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const WARMUP_CYCLES: u64 = 2_000;
const MEASURED_CYCLES: u64 = 500;

#[test]
fn steady_state_cycle_loop_is_allocation_free() {
    for kind in RoutingKind::ALL {
        for fc in [FlowControlKind::Vct, FlowControlKind::Wormhole] {
            // OLM requires VCT.
            if !kind.supports_wormhole() && fc == FlowControlKind::Wormhole {
                continue;
            }
            let mut spec = ExperimentSpec::new(2);
            spec.routing = kind;
            spec.flow_control = fc;
            spec.traffic = TrafficKind::Uniform;
            spec.seed = 42;
            let mut sim = spec.build_simulation();
            // Every probe instrument on and the detectors armed: the active
            // observability layer must be allocation-free too (storage
            // reserved here, before warm-up).
            sim.install_probes(ProbeConfig {
                delay: true,
                ..ProbeConfig::full_active(64)
            });
            sim.network_mut()
                .set_injection(Some(BernoulliInjection::new(0.1, fc.packet_size())));

            // Warm-up: source-queue high-water marks and any arena growth
            // beyond the preallocation happen here.
            sim.run_cycles(WARMUP_CYCLES);

            let before = ALLOCS.load(Ordering::Relaxed);
            sim.run_cycles(MEASURED_CYCLES);
            let delta = ALLOCS.load(Ordering::Relaxed) - before;

            assert!(
                sim.network().stats.total_delivered > 0,
                "{} under {} delivered nothing — the run would pin an idle loop",
                kind.name(),
                fc.name()
            );
            assert!(
                sim.probe().is_some_and(|p| p.samples() > 0),
                "{} under {}: probes recorded nothing — the probe half of the pin is vacuous",
                kind.name(),
                fc.name()
            );
            assert_eq!(
                delta,
                0,
                "{} under {}: {delta} heap allocations in {MEASURED_CYCLES} steady-state cycles \
                 (probes enabled)",
                kind.name(),
                fc.name()
            );
        }
    }

    per_phase_attribution();
}

/// Phase names in pipeline order, as reported by `step_with_phase_hook`.
const PHASES: [&str; 5] = ["arrivals", "injection", "routing", "switch", "bookkeeping"];

/// Attribute steady-state allocator activity to individual phases and assert
/// the zero for each one separately (probes installed, so the arrival and
/// switch paths include their probe recording).
fn per_phase_attribution() {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.flow_control = FlowControlKind::Vct;
    spec.traffic = TrafficKind::Uniform;
    spec.seed = 42;
    let mut sim = spec.build_simulation();
    sim.install_probes(ProbeConfig {
        delay: true,
        ..ProbeConfig::full_active(64)
    });
    sim.network_mut()
        .set_injection(Some(BernoulliInjection::new(
            0.1,
            FlowControlKind::Vct.packet_size(),
        )));
    sim.run_cycles(WARMUP_CYCLES);

    let mut per_phase = [0u64; 5];
    let mut current: Option<usize> = None;
    let mut last = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..MEASURED_CYCLES {
        let mut hook = |name: &'static str| {
            let now = ALLOCS.load(Ordering::Relaxed);
            if let Some(idx) = current {
                per_phase[idx] += now - last;
            }
            last = now;
            current = PHASES.iter().position(|&p| p == name);
        };
        sim.network_mut().step_with_phase_hook(&mut hook);
    }
    assert!(
        sim.network().stats.total_delivered > 0,
        "per-phase pin ran an idle loop"
    );
    for (phase, &allocs) in PHASES.iter().zip(&per_phase) {
        assert_eq!(
            allocs, 0,
            "phase `{phase}` performed {allocs} heap allocations in {MEASURED_CYCLES} \
             steady-state cycles (probes enabled)"
        );
    }
}
