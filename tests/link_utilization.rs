//! Integration test: the link-utilization instrumentation exposes the ADVG+h
//! intermediate-group pathology that motivates local misrouting.
//!
//! Under ADVG+h with Valiant routing (global misrouting only), most Valiant paths
//! need one specific local hop inside their intermediate group, so a handful of local
//! links run near saturation while the average local link stays mostly idle.  With
//! OLM, local misrouting spreads that load over the other local links of the group.

use dragonfly::core::{ExperimentSpec, RoutingKind, TrafficKind};
use dragonfly::topology::{DragonflyParams, PortKind};

fn run_and_summarize(routing: RoutingKind, h: usize) -> (f64, f64, f64) {
    let mut spec = ExperimentSpec::new(h);
    spec.routing = routing;
    spec.traffic = TrafficKind::AdversarialGlobal(h);
    spec.offered_load = 0.8;
    spec.seed = 3;
    let mut sim = spec.build_simulation();
    sim.network_mut()
        .set_injection(Some(dragonfly::traffic::BernoulliInjection::new(0.8, 8)));
    sim.run_cycles(6_000);
    let (max_local, mean_local) = sim.network().link_utilization_summary(PortKind::Local);
    let (_, mean_global) = sim.network().link_utilization_summary(PortKind::Global);
    (max_local, mean_local, mean_global)
}

#[test]
fn advg_h_concentrates_local_load_under_valiant_but_not_under_olm() {
    let h = 3;
    let (valiant_max, valiant_mean, valiant_global) = run_and_summarize(RoutingKind::Valiant, h);
    let (olm_max, olm_mean, _) = run_and_summarize(RoutingKind::Olm, h);

    // Valiant: the hottest local link runs near saturation and carries far more than
    // the average local link (the paper's intermediate-group pathology).
    assert!(
        valiant_max > 0.8,
        "some local link should be near saturation under Valiant/ADVG+h, got {valiant_max:.3}"
    );
    assert!(
        valiant_max > valiant_mean * 2.0,
        "Valiant under ADVG+h should concentrate local load: max {valiant_max:.3} vs mean {valiant_mean:.3}"
    );
    // Global links are busy in both cases (this is global-heavy traffic).
    assert!(
        valiant_global > 0.05,
        "global links should carry load, got {valiant_global:.3}"
    );
    // OLM spreads the local load: its concentration ratio does not exceed Valiant's.
    let valiant_ratio = valiant_max / valiant_mean.max(1e-9);
    let olm_ratio = olm_max / olm_mean.max(1e-9);
    assert!(
        olm_ratio < valiant_ratio * 1.1,
        "OLM should balance local links at least as well as Valiant: {olm_ratio:.2} vs {valiant_ratio:.2}"
    );
}

#[test]
fn analytical_bounds_match_topology_analysis() {
    // Cross-check the static analysis module against the paper's formulas at several
    // scales.
    for h in [2usize, 4, 8] {
        let params = DragonflyParams::new(h);
        let bounds = params.throughput_bounds();
        assert!((bounds.advg_minimal - 1.0 / (2.0 * (h * h) as f64 + 1.0)).abs() < 1e-12);
        assert!((bounds.advl_minimal - 1.0 / h as f64).abs() < 1e-12);
        // The ADVG+h pathology exists (few no-hop intermediate groups), the ADVG+1 one
        // does not.
        assert!(params.valiant_no_local_hop_fraction(h) < params.valiant_no_local_hop_fraction(1));
    }
}
