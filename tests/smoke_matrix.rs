//! Cross-cutting smoke matrix: every routing mechanism × flow control combination
//! must run under load without panicking or deadlocking, and the monomorphized
//! (static-dispatch) engine must produce byte-identical reports to the type-erased
//! (`Box<dyn RoutingAlgorithm>`) engine for the same seed.

use dragonfly::core::{ExperimentSpec, FlowControlKind, RoutingKind, TrafficKind};
use dragonfly::traffic::BernoulliInjection;

const FLOW_CONTROLS: [FlowControlKind; 2] = [FlowControlKind::Vct, FlowControlKind::Wormhole];

/// OLM requires VCT; every other (mechanism, flow control) pair is supported.
fn supported(kind: RoutingKind, fc: FlowControlKind) -> bool {
    kind.supports_wormhole() || fc != FlowControlKind::Wormhole
}

#[test]
fn every_mechanism_times_flow_control_runs_under_load() {
    for kind in RoutingKind::ALL {
        for fc in FLOW_CONTROLS {
            if !supported(kind, fc) {
                continue;
            }
            let mut spec = ExperimentSpec::new(2);
            spec.routing = kind;
            spec.flow_control = fc;
            spec.traffic = TrafficKind::Uniform;
            spec.seed = 42;
            let mut sim = spec.build_simulation();
            sim.network_mut()
                .set_injection(Some(BernoulliInjection::new(0.1, fc.packet_size())));
            sim.run_cycles(2_000);
            let net = sim.network();
            assert!(
                !net.deadlock_detected,
                "{} under {} deadlocked",
                kind.name(),
                fc.name()
            );
            assert!(
                net.stats.total_generated > 0,
                "{} under {} generated no traffic",
                kind.name(),
                fc.name()
            );
            assert!(
                net.stats.total_delivered > 0,
                "{} under {} delivered nothing in 2k cycles",
                kind.name(),
                fc.name()
            );
        }
    }
}

#[test]
fn static_and_dyn_dispatch_produce_identical_reports() {
    for kind in RoutingKind::ALL {
        for fc in FLOW_CONTROLS {
            if !supported(kind, fc) {
                continue;
            }
            let mut spec = ExperimentSpec::new(2);
            spec.routing = kind;
            spec.flow_control = fc;
            spec.traffic = TrafficKind::AdversarialGlobal(1);
            spec.offered_load = 0.15;
            spec.seed = 7;
            spec.warmup = 400;
            spec.measure = 800;
            spec.drain = 800;
            let static_report = spec.run();
            let dyn_report = spec.run_dyn();
            assert_eq!(
                static_report,
                dyn_report,
                "static and dyn engines diverged for {} under {}",
                kind.name(),
                fc.name()
            );
        }
    }
}

/// Wormhole under adversarial-local and mixed traffic: every wormhole-capable
/// mechanism keeps delivering (ROADMAP wormhole-scenario item; the original matrix
/// only drove WH with UN/ADVG).
#[test]
fn wormhole_survives_advl_and_mixed_traffic() {
    let patterns = [
        TrafficKind::AdversarialLocal(1),
        TrafficKind::Mixed {
            global_fraction: 0.5,
            global_offset: 2,
            local_offset: 1,
        },
    ];
    for kind in RoutingKind::ALL {
        if !kind.supports_wormhole() {
            continue;
        }
        for traffic in &patterns {
            let mut spec = ExperimentSpec::new(2);
            spec.routing = kind;
            spec.flow_control = FlowControlKind::Wormhole;
            spec.traffic = traffic.clone();
            spec.offered_load = 0.2;
            spec.seed = 17;
            spec.warmup = 600;
            spec.measure = 1_200;
            spec.drain = 2_400;
            let report = spec.run();
            assert!(
                !report.deadlock_detected,
                "{} deadlocked under WH {}",
                kind.name(),
                traffic.name()
            );
            assert!(
                report.packets_measured > 10,
                "{} under WH {} measured only {}",
                kind.name(),
                traffic.name(),
                report.packets_measured
            );
        }
    }
}

/// Head-of-line coverage beyond the paper's 2 global VCs: every wormhole-capable
/// mechanism accepts configurations with 3 and 4 global VCs (extra VCs only relax
/// the deadlock-avoidance ladder) and keeps delivering under adversarial traffic,
/// where blocked packets spanning routers make HOL blocking visible.
#[test]
fn wormhole_accepts_three_and_four_global_vcs() {
    use dragonfly::sim::Simulation;
    use dragonfly::traffic::AdversarialGlobal;
    let mut baseline = Vec::new();
    for global_vcs in [2, 3, 4] {
        for kind in RoutingKind::ALL {
            if !kind.supports_wormhole() {
                continue;
            }
            let config = dragonfly::sim::SimConfig::paper_wormhole(2)
                .with_local_vcs(kind.local_vcs())
                .with_global_vcs(global_vcs)
                .with_seed(29);
            let mut sim =
                Simulation::new(config, kind.build(), Box::new(AdversarialGlobal::new(1)));
            let report = sim.run_steady_state(0.2, 600, 1_200, 2_400);
            assert!(
                !report.deadlock_detected,
                "{} deadlocked under WH with {global_vcs} global VCs",
                kind.name()
            );
            assert!(
                report.packets_measured > 10,
                "{} with {global_vcs} global VCs measured only {}",
                kind.name(),
                report.packets_measured
            );
            if global_vcs == 2 {
                baseline.push((kind, report));
            } else if kind == RoutingKind::Piggybacking {
                // The VC ladder itself never claims a global VC above the hop
                // count (≤ 1), so the extra VCs sit empty — but they are not
                // inert for every mechanism: PB advertises congestion from a
                // global output's occupancy *fraction of total capacity*, and
                // a third/fourth VC grows that capacity, shifting the
                // misrouting trigger.  Pin that the knob reaches PB's
                // decisions.
                let (_, base) = baseline
                    .iter()
                    .find(|(k, _)| *k == kind)
                    .expect("baseline runs first");
                assert_ne!(
                    (report.packets_delivered, report.avg_latency_cycles),
                    (base.packets_delivered, base.avg_latency_cycles),
                    "PB's congestion threshold should see the extra global VC capacity"
                );
            }
        }
    }
}

/// Mechanisms whose deadlock-avoidance ladder needs 2 global VCs reject a
/// 1-VC configuration with a clear error naming the requirement.
#[test]
#[should_panic(expected = "requires 2 global VCs but the configuration provides 1")]
fn too_few_global_vcs_is_a_clear_construction_error() {
    use dragonfly::sim::Simulation;
    use dragonfly::traffic::Uniform;
    let config = dragonfly::sim::SimConfig::paper_wormhole(2)
        .with_local_vcs(RoutingKind::Valiant.local_vcs())
        .with_global_vcs(1);
    let _ = Simulation::new(
        config,
        RoutingKind::Valiant.build(),
        Box::new(Uniform::new()),
    );
}

/// A workload (multi-job, phase-switching) run must be byte-identical between the
/// monomorphized and the type-erased engines, like every other traffic kind.
#[test]
fn workload_static_and_dyn_dispatch_agree() {
    use dragonfly::core::WorkloadSpec;
    for kind in [RoutingKind::Minimal, RoutingKind::Olm] {
        let mut spec = ExperimentSpec::new(2);
        spec.routing = kind;
        spec.traffic = TrafficKind::Workload(WorkloadSpec::interference(72, 1, 0.2, 0.05));
        spec.seed = 23;
        spec.warmup = 400;
        spec.measure = 800;
        spec.drain = 1_200;
        assert_eq!(
            spec.run_workload(),
            spec.run_workload_dyn(),
            "workload engines diverged for {}",
            kind.name()
        );
    }
}

#[test]
fn static_and_dyn_dispatch_produce_identical_batch_reports() {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::Mixed {
        global_fraction: 0.5,
        global_offset: 2,
        local_offset: 1,
    };
    spec.seed = 3;
    let static_report = spec.run_batch(2, 100_000);
    let dyn_report = spec.run_batch_dyn(2, 100_000);
    assert_eq!(static_report, dyn_report);
    assert!(!static_report.deadlock_detected);
    assert!(!static_report.timed_out);
}
