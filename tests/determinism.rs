//! Reproducibility tests: identical seeds give bit-identical results, different seeds
//! give statistically consistent but distinct runs, and parallel execution does not
//! change anything (each simulation owns its RNG).

use dragonfly::core::{run_parallel, ExperimentSpec, RoutingKind, TrafficKind};

fn spec(seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::AdversarialGlobal(1);
    spec.offered_load = 0.3;
    spec.warmup = 1_000;
    spec.measure = 1_500;
    spec.drain = 1_500;
    spec.seed = seed;
    spec
}

#[test]
fn same_seed_is_bit_identical() {
    let a = spec(7).run();
    let b = spec(7).run();
    assert_eq!(a.packets_delivered, b.packets_delivered);
    assert_eq!(a.packets_measured, b.packets_measured);
    assert_eq!(a.accepted_load.to_bits(), b.accepted_load.to_bits());
    assert_eq!(
        a.avg_latency_cycles.to_bits(),
        b.avg_latency_cycles.to_bits()
    );
    assert_eq!(a.avg_hops.to_bits(), b.avg_hops.to_bits());
}

#[test]
fn different_seeds_differ_but_agree_statistically() {
    let a = spec(1).run();
    let b = spec(2).run();
    // Different random streams: the exact packet counts differ...
    assert_ne!(
        (a.packets_delivered, a.avg_latency_cycles.to_bits()),
        (b.packets_delivered, b.avg_latency_cycles.to_bits())
    );
    // ...but the physics agrees: throughput within 15% of each other.
    let ratio = a.accepted_load / b.accepted_load;
    assert!((0.85..1.18).contains(&ratio), "throughput ratio {ratio}");
}

#[test]
fn parallel_execution_matches_sequential() {
    let specs = vec![spec(11), spec(12), spec(13)];
    let sequential: Vec<_> = specs.iter().map(|s| s.run()).collect();
    let parallel = run_parallel(&specs, Some(3), |_, _| {});
    for (s, p) in sequential.iter().zip(parallel.iter()) {
        assert_eq!(s.packets_delivered, p.packets_delivered);
        assert_eq!(s.accepted_load.to_bits(), p.accepted_load.to_bits());
        assert_eq!(
            s.avg_latency_cycles.to_bits(),
            p.avg_latency_cycles.to_bits()
        );
    }
}

/// The deadlock watchdog's verdict is deterministic and pinned across the
/// link-fabric layout: a packet crossing a global link is silent for the
/// link's full latency (its phit sits in the pipeline, nothing "moves"), so a
/// threshold below that latency fires the watchdog at a reproducible cycle
/// while the default threshold never fires.  The in-flight counts the
/// watchdog's idle checks rely on are packed-metadata reads, asserted here
/// through the public accessors.
#[test]
fn watchdog_verdict_is_pinned() {
    use dragonfly::sim::{LinkEnd, SimConfig, Simulation};
    use dragonfly::topology::NodeId;
    use dragonfly::traffic::Uniform;

    let run = |threshold: u64| {
        let mut config = SimConfig::paper_vct(2).with_seed(5);
        config.deadlock_threshold = threshold;
        let mut sim = Simulation::new(
            config,
            RoutingKind::Minimal.build(),
            Box::new(Uniform::new()),
        );
        let net = sim.network_mut();
        // One packet from node 0 to the last node: its route crosses a global
        // link (latency ≫ the tiny threshold).
        let dst = NodeId((net.params().num_nodes() - 1) as u32);
        let id = net.packets.alloc(NodeId(0), dst, 8, 0);
        net.sources[0].pending.push_back(id);
        net.stats.record_generated(8, 0);
        for _ in 0..2_000 {
            sim.step();
        }
        (sim.network().deadlock_detected, sim.network().is_drained())
    };

    // Default threshold: the silence of a long link is not a deadlock.
    let (fired, drained) = run(50_000);
    assert!(!fired && drained, "default threshold must stay quiet");
    // A threshold below the global-link latency mistakes in-flight silence
    // for a stall — deterministically, every run.
    let (fired_a, _) = run(40);
    let (fired_b, _) = run(40);
    assert!(fired_a, "threshold below link latency must fire");
    assert_eq!(fired_a, fired_b, "the verdict must be reproducible");

    // The in-flight accounting behind the idle checks is O(1) metadata: a
    // fresh network reports empty pipelines on every link without touching
    // the pools, and the terminal link of a loaded router reports its phits.
    let config = SimConfig::paper_vct(2).with_seed(5);
    let mut sim = Simulation::new(
        config,
        RoutingKind::Minimal.build(),
        Box::new(Uniform::new()),
    );
    let net = sim.network_mut();
    for li in 0..net.num_links() {
        assert_eq!(net.link_phits_in_flight(li), 0);
        assert_eq!(net.link_credits_in_flight(li), 0);
    }
    let dst = NodeId((net.params().num_nodes() - 1) as u32);
    let id = net.packets.alloc(NodeId(0), dst, 8, 0);
    net.sources[0].pending.push_back(id);
    net.stats.record_generated(8, 0);
    for _ in 0..40 {
        sim.step();
    }
    let net = sim.network();
    let in_flight: usize = (0..net.num_links())
        .map(|li| net.link_phits_in_flight(li))
        .sum();
    assert!(in_flight > 0, "after 40 cycles some phit must be on a link");
    for li in 0..net.num_links() {
        if net.link_phits_in_flight(li) > 0 {
            assert!(
                matches!(net.link_end(li), LinkEnd::Router { .. }),
                "the packet's phits are crossing router-to-router links"
            );
        }
    }
}

/// Arena preallocation is a pure capacity hint: a cold arena (grows from
/// empty), a tiny preallocation that is outgrown mid-run, and the default
/// heuristic must all produce byte-identical reports.  This pins the
/// descending-free-list construction (slot ids are handed out in the same
/// order whether a slot was preallocated or pushed by growth).
#[test]
fn arena_preallocation_never_changes_results() {
    use dragonfly::sim::{SimConfig, Simulation};
    use dragonfly::traffic::Uniform;

    let run = |prealloc: Option<usize>| {
        let mut config = SimConfig::paper_vct(2).with_seed(31);
        if let Some(slots) = prealloc {
            config = config.with_arena_prealloc(slots);
        }
        let mut sim = Simulation::new(config, RoutingKind::Olm.build(), Box::new(Uniform::new()));
        let report = sim.run_steady_state(0.3, 800, 1_200, 1_200);
        (report, sim.network().arena_grows())
    };

    let (cold, cold_grows) = run(Some(0));
    let (tiny, tiny_grows) = run(Some(16));
    let (default_heuristic, default_grows) = run(None);

    assert!(
        cold_grows > 16,
        "cold arena must grow for this test to bite"
    );
    assert!(
        tiny_grows > 0 && tiny_grows < cold_grows,
        "tiny preallocation must be outgrown mid-run (grew {tiny_grows})"
    );
    assert_eq!(
        default_grows, 0,
        "the default heuristic should cover this load without growing"
    );
    assert_eq!(cold, tiny, "cold and outgrown arenas diverged");
    assert_eq!(
        cold, default_heuristic,
        "cold and preallocated arenas diverged"
    );
}
