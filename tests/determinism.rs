//! Reproducibility tests: identical seeds give bit-identical results, different seeds
//! give statistically consistent but distinct runs, and parallel execution does not
//! change anything (each simulation owns its RNG).

use dragonfly::core::{run_parallel, ExperimentSpec, RoutingKind, TrafficKind};

fn spec(seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::AdversarialGlobal(1);
    spec.offered_load = 0.3;
    spec.warmup = 1_000;
    spec.measure = 1_500;
    spec.drain = 1_500;
    spec.seed = seed;
    spec
}

#[test]
fn same_seed_is_bit_identical() {
    let a = spec(7).run();
    let b = spec(7).run();
    assert_eq!(a.packets_delivered, b.packets_delivered);
    assert_eq!(a.packets_measured, b.packets_measured);
    assert_eq!(a.accepted_load.to_bits(), b.accepted_load.to_bits());
    assert_eq!(
        a.avg_latency_cycles.to_bits(),
        b.avg_latency_cycles.to_bits()
    );
    assert_eq!(a.avg_hops.to_bits(), b.avg_hops.to_bits());
}

#[test]
fn different_seeds_differ_but_agree_statistically() {
    let a = spec(1).run();
    let b = spec(2).run();
    // Different random streams: the exact packet counts differ...
    assert_ne!(
        (a.packets_delivered, a.avg_latency_cycles.to_bits()),
        (b.packets_delivered, b.avg_latency_cycles.to_bits())
    );
    // ...but the physics agrees: throughput within 15% of each other.
    let ratio = a.accepted_load / b.accepted_load;
    assert!((0.85..1.18).contains(&ratio), "throughput ratio {ratio}");
}

#[test]
fn parallel_execution_matches_sequential() {
    let specs = vec![spec(11), spec(12), spec(13)];
    let sequential: Vec<_> = specs.iter().map(|s| s.run()).collect();
    let parallel = run_parallel(&specs, Some(3), |_, _| {});
    for (s, p) in sequential.iter().zip(parallel.iter()) {
        assert_eq!(s.packets_delivered, p.packets_delivered);
        assert_eq!(s.accepted_load.to_bits(), p.accepted_load.to_bits());
        assert_eq!(
            s.avg_latency_cycles.to_bits(),
            p.avg_latency_cycles.to_bits()
        );
    }
}

/// Arena preallocation is a pure capacity hint: a cold arena (grows from
/// empty), a tiny preallocation that is outgrown mid-run, and the default
/// heuristic must all produce byte-identical reports.  This pins the
/// descending-free-list construction (slot ids are handed out in the same
/// order whether a slot was preallocated or pushed by growth).
#[test]
fn arena_preallocation_never_changes_results() {
    use dragonfly::sim::{SimConfig, Simulation};
    use dragonfly::traffic::Uniform;

    let run = |prealloc: Option<usize>| {
        let mut config = SimConfig::paper_vct(2).with_seed(31);
        if let Some(slots) = prealloc {
            config = config.with_arena_prealloc(slots);
        }
        let mut sim = Simulation::new(config, RoutingKind::Olm.build(), Box::new(Uniform::new()));
        let report = sim.run_steady_state(0.3, 800, 1_200, 1_200);
        (report, sim.network().arena_grows())
    };

    let (cold, cold_grows) = run(Some(0));
    let (tiny, tiny_grows) = run(Some(16));
    let (default_heuristic, default_grows) = run(None);

    assert!(
        cold_grows > 16,
        "cold arena must grow for this test to bite"
    );
    assert!(
        tiny_grows > 0 && tiny_grows < cold_grows,
        "tiny preallocation must be outgrown mid-run (grew {tiny_grows})"
    );
    assert_eq!(
        default_grows, 0,
        "the default heuristic should cover this load without growing"
    );
    assert_eq!(cold, tiny, "cold and outgrown arenas diverged");
    assert_eq!(
        cold, default_heuristic,
        "cold and preallocated arenas diverged"
    );
}
