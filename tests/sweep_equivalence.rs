//! Parallel vs. sequential sweep equivalence: the same specs routed through
//! `SweepRunner` on a worker pool, through its `--sequential` escape hatch, and
//! through a plain hand-rolled loop must yield byte-identical reports — for the
//! steady-state, workload and burst protocols alike.  This is the contract that
//! lets every figure binary default to the parallel path.

use dragonfly::core::{
    interference_sweep, load_sweep, ExperimentSpec, FlowControlKind, InterferenceSweep, LoadSweep,
    PlacementPolicy, RoutingKind, SweepRunner, TrafficKind,
};

fn quick_base() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(2);
    spec.warmup = 400;
    spec.measure = 800;
    spec.drain = 1_000;
    spec.seed = 33;
    spec
}

fn steady_specs() -> Vec<ExperimentSpec> {
    let mut base = quick_base();
    base.traffic = TrafficKind::AdversarialGlobal(1);
    load_sweep(&LoadSweep {
        base,
        mechanisms: vec![
            RoutingKind::Minimal,
            RoutingKind::Piggybacking,
            RoutingKind::Olm,
        ],
        loads: vec![0.1, 0.3],
    })
}

fn workload_specs() -> Vec<ExperimentSpec> {
    interference_sweep(&InterferenceSweep {
        base: quick_base(),
        mechanisms: vec![RoutingKind::Minimal, RoutingKind::Olm],
        placements: vec![
            PlacementPolicy::Contiguous,
            PlacementPolicy::RoundRobinRouters,
        ],
        aggressor_loads: vec![0.2],
        aggressor_offset: 1,
        victim_load: 0.1,
    })
}

#[test]
fn steady_state_parallel_matches_sequential() {
    let specs = steady_specs();
    assert_eq!(specs.len(), 6);
    let parallel = SweepRunner::new("equiv")
        .quiet()
        .jobs(Some(4))
        .run_steady(&specs);
    let sequential = SweepRunner::new("equiv")
        .quiet()
        .sequential(true)
        .run_steady(&specs);
    let plain: Vec<_> = specs.iter().map(ExperimentSpec::run).collect();
    assert_eq!(parallel, sequential);
    assert_eq!(parallel, plain);
    // Byte-identical down to the CSV rows the figure binaries write.
    for (a, b) in parallel.iter().zip(plain.iter()) {
        assert_eq!(a.csv_row(), b.csv_row());
    }
}

#[test]
fn workload_parallel_matches_sequential() {
    let specs = workload_specs();
    assert_eq!(specs.len(), 4);
    let parallel = SweepRunner::new("equiv")
        .quiet()
        .jobs(Some(4))
        .run_workloads(&specs);
    let sequential = SweepRunner::new("equiv")
        .quiet()
        .sequential(true)
        .run_workloads(&specs);
    let plain: Vec<_> = specs.iter().map(ExperimentSpec::run_workload).collect();
    assert_eq!(parallel, sequential);
    assert_eq!(parallel, plain);
    // The per-job/per-phase breakdowns (not just the aggregates) are identical
    // down to the CSV rows the workload binaries write.
    for (a, b) in parallel.iter().zip(plain.iter()) {
        assert_eq!(a.phase_csv_rows(), b.phase_csv_rows());
        assert_eq!(a.jobs.len(), 2);
    }
}

#[test]
fn batch_parallel_matches_sequential() {
    let mut base = quick_base();
    base.flow_control = FlowControlKind::Vct;
    base.offered_load = 1.0;
    base.traffic = TrafficKind::Mixed {
        global_fraction: 0.5,
        global_offset: 2,
        local_offset: 1,
    };
    let specs: Vec<ExperimentSpec> = [RoutingKind::Piggybacking, RoutingKind::Rlm]
        .into_iter()
        .map(|routing| {
            let mut spec = base.clone();
            spec.routing = routing;
            spec
        })
        .collect();
    let parallel = SweepRunner::new("equiv")
        .quiet()
        .run_batches(&specs, 3, 200_000);
    let sequential = SweepRunner::new("equiv")
        .quiet()
        .sequential(true)
        .run_batches(&specs, 3, 200_000);
    let plain: Vec<_> = specs.iter().map(|s| s.run_batch(3, 200_000)).collect();
    assert_eq!(parallel, sequential);
    assert_eq!(parallel, plain);
    assert!(parallel.iter().all(|r| !r.timed_out));
}

#[test]
fn runner_worker_count_does_not_change_results() {
    let specs = steady_specs();
    let one = SweepRunner::new("equiv")
        .quiet()
        .jobs(Some(1))
        .run_steady(&specs);
    let many = SweepRunner::new("equiv")
        .quiet()
        .jobs(Some(8))
        .run_steady(&specs);
    assert_eq!(one, many);
}
