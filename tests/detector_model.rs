//! Model-checks the online anomaly detectors against a naive reference.
//!
//! The production [`DetectorBank`] is an incremental state machine: one pass,
//! cumulative baselines, re-arm latches, allocation-free.  The reference model
//! here recomputes every verdict *from whole slices of the stream* — each
//! window's deltas are taken directly from the cumulative counters at its
//! boundaries, the latch is expressed as "fires iff the condition holds now
//! and did not hold in the previous window", and stall trips are derived from
//! maximal flat runs.  Agreement over seeded random streams pins the
//! incremental bookkeeping (baseline updates, window clock, latch resets)
//! against an independent formulation of the same semantics.
//!
//! Originally a `proptest` suite; the build environment has no registry
//! access, so the properties run over seeded random cases drawn from the
//! workspace's own deterministic RNG (the `proptest_invariants.rs` idiom).

use dragonfly::probe::{
    DetectorBank, DetectorConfig, DetectorSample, TripRecord, DETECT_COLLAPSE, DETECT_SKEW,
    DETECT_STALL, DETECT_STORM, NO_ROUTER,
};
use dragonfly::rng::Rng;

/// One generated sample row of cumulative counters.
#[derive(Debug, Clone)]
struct Row {
    cycle: u64,
    injected: u64,
    delivered: u64,
    gmis: u64,
    lmis: u64,
    buffered: u64,
    router_delivered: Vec<u64>,
}

/// Generate a random monotone stream. `routers > 0` adds per-router
/// deliveries (arming the skew detector) whose sum is the delivered counter.
fn random_stream(rng: &mut Rng, len: usize, routers: usize) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::with_capacity(len);
    let mut cycle = 0u64;
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut gmis = 0u64;
    let mut lmis = 0u64;
    let mut per_router = vec![0u64; routers];
    for _ in 0..len {
        cycle += 1 + rng.next_u64() % 64;
        injected += rng.next_u64() % 24;
        // A fair chance of zero-progress samples so stall runs actually occur.
        let stalled = rng.next_u64().is_multiple_of(3);
        if !stalled {
            if routers > 0 {
                for r in per_router.iter_mut() {
                    // Skewed on purpose: router 0 gets a bigger share sometimes.
                    *r += rng.next_u64() % 8;
                }
                if rng.next_u64().is_multiple_of(2) {
                    per_router[0] += rng.next_u64() % 32;
                }
                delivered = per_router.iter().sum();
            } else {
                delivered += rng.next_u64() % 20;
            }
        }
        gmis += rng.next_u64() % 10;
        lmis += rng.next_u64() % 6;
        let buffered = rng.next_u64() % 50;
        rows.push(Row {
            cycle,
            injected,
            delivered,
            gmis,
            lmis,
            buffered,
            router_delivered: per_router.clone(),
        });
    }
    rows
}

/// Feed a stream through the production bank.
fn run_bank(cfg: &DetectorConfig, rows: &[Row], routers: usize) -> (Vec<TripRecord>, u64) {
    let mut bank = DetectorBank::new(cfg, routers);
    for row in rows {
        bank.step(DetectorSample {
            cycle: row.cycle,
            injected: row.injected,
            delivered: row.delivered,
            global_misroutes: row.gmis,
            local_misroutes: row.lmis,
            buffered_phits: row.buffered,
            router_delivered: (routers > 0).then_some(&row.router_delivered[..]),
        });
    }
    (bank.trips().to_vec(), bank.trips_dropped())
}

/// The naive reference: recompute every trip from whole slices of the stream.
fn model(cfg: &DetectorConfig, rows: &[Row], routers: usize) -> (Vec<TripRecord>, u64) {
    let w = cfg.window as usize;
    // (sample index, same-sample firing order, record)
    let mut trips: Vec<(usize, u8, TripRecord)> = Vec::new();

    // Credit stall: one trip per maximal flat run reaching the threshold, at
    // the run's stall_samples-th sample.
    let mut run_start = 0usize;
    let mut run = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let prev_delivered = if i == 0 { 0 } else { rows[i - 1].delivered };
        if row.buffered > 0 && row.delivered == prev_delivered {
            if run == 0 {
                run_start = i;
            }
            run += 1;
            if run == cfg.stall_samples as usize {
                trips.push((
                    i,
                    0,
                    TripRecord {
                        detector: DETECT_STALL,
                        cycle: row.cycle,
                        sample: i as u32,
                        window_start_cycle: rows[run_start].cycle,
                        observed: row.buffered,
                        bound: u64::from(cfg.stall_samples),
                        router: NO_ROUTER,
                    },
                ));
            }
        } else {
            run = 0;
        }
    }

    // Windowed detectors: evaluate each complete non-overlapping window from
    // the cumulative counters at its boundaries; a trip fires iff the
    // condition holds in this window and did not hold in the previous one.
    let windows = rows.len() / w;
    let mut prev_collapse = false;
    let mut prev_storm = false;
    let mut prev_skew = false;
    for k in 0..windows {
        let first = k * w;
        let last = first + w - 1;
        let end = &rows[last];
        let base = if k == 0 { None } else { Some(&rows[first - 1]) };
        let d_inj = end.injected - base.map_or(0, |b| b.injected);
        let d_del = end.delivered - base.map_or(0, |b| b.delivered);
        let d_mis = end.gmis + end.lmis - base.map_or(0, |b| b.gmis + b.lmis);
        let busy = d_inj >= cfg.min_window_injected;

        let collapse = busy && d_del * 100 < u64::from(cfg.collapse_pct) * d_inj;
        if collapse && !prev_collapse {
            trips.push((
                last,
                1,
                TripRecord {
                    detector: DETECT_COLLAPSE,
                    cycle: end.cycle,
                    sample: last as u32,
                    window_start_cycle: rows[first].cycle,
                    observed: d_del,
                    bound: d_inj,
                    router: NO_ROUTER,
                },
            ));
        }
        prev_collapse = collapse;

        let storm = busy && d_mis * 100 > u64::from(cfg.misroute_pct) * d_inj;
        if storm && !prev_storm {
            trips.push((
                last,
                2,
                TripRecord {
                    detector: DETECT_STORM,
                    cycle: end.cycle,
                    sample: last as u32,
                    window_start_cycle: rows[first].cycle,
                    observed: d_mis,
                    bound: d_inj,
                    router: NO_ROUTER,
                },
            ));
        }
        prev_storm = storm;

        if routers > 0 {
            let n = routers as u64;
            let mut total = 0u64;
            let mut max_delta = 0u64;
            let mut max_router = NO_ROUTER;
            for r in 0..routers {
                let delta = end.router_delivered[r] - base.map_or(0, |b| b.router_delivered[r]);
                total += delta;
                if delta > max_delta {
                    max_delta = delta;
                    max_router = r as u32;
                }
            }
            let skew = total >= cfg.min_window_injected
                && max_delta * n * 100 > u64::from(cfg.skew_pct) * total;
            if skew && !prev_skew {
                trips.push((
                    last,
                    3,
                    TripRecord {
                        detector: DETECT_SKEW,
                        cycle: end.cycle,
                        sample: last as u32,
                        window_start_cycle: rows[first].cycle,
                        observed: max_delta * n,
                        bound: total,
                        router: max_router,
                    },
                ));
            }
            prev_skew = skew;
        }
    }

    trips.sort_by_key(|&(sample, order, _)| (sample, order));
    let all: Vec<TripRecord> = trips.into_iter().map(|(_, _, t)| t).collect();
    let dropped = all.len().saturating_sub(cfg.max_trips) as u64;
    let stored = all.into_iter().take(cfg.max_trips).collect();
    (stored, dropped)
}

fn random_cfg(rng: &mut Rng) -> DetectorConfig {
    DetectorConfig {
        window: 1 + (rng.next_u64() % 6) as u32,
        collapse_pct: (rng.next_u64() % 121) as u32,
        min_window_injected: rng.next_u64() % 40,
        stall_samples: 1 + (rng.next_u64() % 5) as u32,
        misroute_pct: (rng.next_u64() % 121) as u32,
        skew_pct: 100 + (rng.next_u64() % 500) as u32,
        // Small sometimes, so the bounded-list truncation is modeled too.
        max_trips: if rng.next_u64().is_multiple_of(4) {
            2
        } else {
            64
        },
    }
}

#[test]
fn detector_bank_matches_the_naive_windowed_model() {
    let mut meta = Rng::seed_from(2013);
    let mut total_trips = 0usize;
    for case in 0..48 {
        let cfg = random_cfg(&mut meta);
        let routers = if meta.next_u64().is_multiple_of(2) {
            0
        } else {
            2 + (meta.next_u64() % 7) as usize
        };
        let len = 30 + (meta.next_u64() % 90) as usize;
        let mut rng = Rng::seed_from(1000 + case);
        let rows = random_stream(&mut rng, len, routers);
        let (bank_trips, bank_dropped) = run_bank(&cfg, &rows, routers);
        let (model_trips, model_dropped) = model(&cfg, &rows, routers);
        assert_eq!(
            bank_trips, model_trips,
            "case {case}: trip lists diverged (cfg {cfg:?}, routers {routers}, len {len})"
        );
        assert_eq!(
            bank_dropped, model_dropped,
            "case {case}: dropped-trip counts diverged"
        );
        total_trips += bank_trips.len();
    }
    // The random streams must actually exercise the detectors, or the
    // agreement above is vacuous.
    assert!(
        total_trips > 40,
        "only {total_trips} trips across all cases — the generator is too tame"
    );
}

#[test]
fn disabled_detectors_never_trip() {
    let mut rng = Rng::seed_from(7);
    let rows = random_stream(&mut rng, 64, 4);
    let (trips, dropped) = run_bank(&DetectorConfig::off(), &rows, 4);
    assert!(trips.is_empty());
    assert_eq!(dropped, 0);
}
