//! Integration tests of the dynamic job scheduler: the pinned fragmentation
//! result, byte-identical determinism across runs and worker counts, and the
//! node-disjointness invariant under arrival/departure churn.

use dragonfly::core::{
    Completion, ExperimentSpec, JobPattern, PlacementPolicy, RoutingKind, SweepRunner, Trace,
    TraceJob, TrafficKind,
};
use dragonfly::sched::scenarios::fragmentation_trace;
use dragonfly::sched::SyntheticTrace;
use dragonfly::sim::Simulation;
use dragonfly::topology::DragonflyParams;

fn churn_spec(routing: RoutingKind, trace: Trace, horizon: u64, drain: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = routing;
    spec.traffic = TrafficKind::Churn(trace);
    // The h = 2 machine is small enough that the exact penalty ratios below are
    // seed-sensitive; re-pinned when the engine moved to per-router RNG streams.
    spec.seed = 41;
    spec.measure = horizon;
    spec.drain = drain;
    spec
}

/// The headline churn result: placing a fresh aggressor/victim pair into the
/// fragmented holes left by departures degrades the victim's tail latency by an
/// order of magnitude versus a contiguous placement on an emptied machine — and
/// adaptive routing (PB, OLM) claws a large part of the penalty back.
#[test]
fn fragmentation_degrades_victim_p99_and_adaptive_routing_narrows_the_gap() {
    let params = DragonflyParams::new(2);
    let (churn_cycle, run_cycles) = (3_000, 11_000);
    // Scattered over every group, the aggressor's job-scoped ADVG+1 puts about
    // 2 × 0.75 = 1.5 phits/cycle onto each +1 global channel: past saturation,
    // so minimal routing queues unboundedly while misrouting drains the excess.
    let (aggressor_load, victim_load) = (0.75, 0.1);
    let trace = |fragmented| {
        fragmentation_trace(
            &params,
            fragmented,
            aggressor_load,
            victim_load,
            churn_cycle,
            run_cycles,
            42,
        )
    };

    let mut penalties = Vec::new();
    let mut frag_p99s = Vec::new();
    for routing in [
        RoutingKind::Minimal,
        RoutingKind::Piggybacking,
        RoutingKind::Olm,
    ] {
        let fresh = churn_spec(routing, trace(false), run_cycles + 2_000, 4_000).run_workload();
        let frag = churn_spec(routing, trace(true), run_cycles + 2_000, 4_000).run_workload();
        for report in [&fresh, &frag] {
            assert!(
                !report.aggregate.deadlock_detected,
                "{routing:?} deadlocked"
            );
            let victim = report.job("victim").unwrap();
            // The victim is never throttled outright: it keeps its ~0.1 load.
            assert!(
                victim.accepted_load > 0.07,
                "{routing:?}: victim accepted {}",
                victim.accepted_load
            );
            // Both variants place the pair immediately at the churn point.
            let lifecycle = victim.lifecycle.unwrap();
            assert_eq!(lifecycle.placed_cycle, Some(churn_cycle));
            assert_eq!(lifecycle.wait_cycles, Some(0));
            assert_eq!(lifecycle.completion_cycle, Some(run_cycles));
        }
        let fresh_p99 = fresh.job("victim").unwrap().p99_latency_cycles;
        let frag_p99 = frag.job("victim").unwrap().p99_latency_cycles;
        penalties.push(frag_p99 / fresh_p99.max(1.0));
        frag_p99s.push(frag_p99);
    }

    let (minimal, pb, olm) = (penalties[0], penalties[1], penalties[2]);
    // Fragmentation is expensive under minimal routing (observed ~80x).
    assert!(
        minimal > 10.0,
        "fragmentation should cost Minimal an order of magnitude in victim p99, got {minimal:.1}x"
    );
    // Adaptive routing reduces the penalty substantially (observed ~38x / ~22x),
    // both relative to each mechanism's own fresh baseline...
    assert!(
        pb < 0.7 * minimal,
        "PB should narrow the fragmentation gap: {pb:.1}x vs Minimal {minimal:.1}x"
    );
    assert!(
        olm < 0.5 * minimal,
        "OLM should narrow the fragmentation gap: {olm:.1}x vs Minimal {minimal:.1}x"
    );
    // ...and in absolute victim tail latency under fragmentation.
    assert!(
        frag_p99s[1] < 0.9 * frag_p99s[0],
        "PB frag p99 {} vs Minimal {}",
        frag_p99s[1],
        frag_p99s[0]
    );
    assert!(
        frag_p99s[2] < 0.9 * frag_p99s[0],
        "OLM frag p99 {} vs Minimal {}",
        frag_p99s[2],
        frag_p99s[0]
    );
}

/// A mixed trace exercising volume-bound completion and every collective pattern.
fn collective_trace() -> Trace {
    let job = |name: &str, arrival, size, placement, pattern, completion| TraceJob {
        name: name.into(),
        arrival,
        size,
        placement,
        pattern,
        offered_load: 0.15,
        completion,
    };
    Trace::new(
        "mixed",
        vec![
            job(
                "a2a",
                0,
                24,
                PlacementPolicy::Contiguous,
                JobPattern::AllToAll,
                Completion::Duration(2_500),
            ),
            job(
                "ring",
                400,
                24,
                PlacementPolicy::RoundRobinRouters,
                JobPattern::RingExchange,
                Completion::Volume(600),
            ),
            job(
                "perm",
                800,
                16,
                PlacementPolicy::Random { seed: 9 },
                JobPattern::Permutation { seed: 5 },
                Completion::Duration(1_500),
            ),
            // Arrives while the machine is 64/72 full: must wait for a departure.
            job(
                "late",
                1_000,
                24,
                PlacementPolicy::Contiguous,
                JobPattern::Uniform,
                Completion::Duration(1_000),
            ),
        ],
    )
}

#[test]
fn fixed_trace_and_seed_reproduce_byte_identical_reports_across_runs_and_jobs() {
    let spec = churn_spec(RoutingKind::Olm, collective_trace(), 12_000, 4_000);

    // Same spec, same seed: byte-identical reports on repeated runs, and the
    // type-erased engine agrees with the monomorphized one.
    let first = spec.run_workload();
    assert_eq!(first, spec.run_workload());
    assert_eq!(first, spec.run_workload_dyn());

    // The parse → emit → parse round-trip preserves behaviour, not just shape.
    let reparsed = Trace::parse(&spec.traffic.churn().unwrap().to_text()).unwrap();
    let respec = churn_spec(RoutingKind::Olm, reparsed, 12_000, 4_000);
    assert_eq!(first, respec.run_workload());

    // Worker count is presentation only: --jobs 1/2/4 give identical reports.
    let specs = vec![spec.clone(), spec.clone(), spec.clone()];
    let sequential = SweepRunner::new("churn determinism")
        .quiet()
        .sequential(true)
        .run_workloads(&specs);
    for jobs in [1, 2, 4] {
        let parallel = SweepRunner::new("churn determinism")
            .quiet()
            .jobs(Some(jobs))
            .run_workloads(&specs);
        assert_eq!(parallel, sequential, "--jobs {jobs} changed the reports");
    }
    assert_eq!(sequential[0], first);

    // The waiting job's lifecycle shows the queueing the trace forces.
    let late = first.job("late").unwrap().lifecycle.unwrap();
    assert_eq!(late.arrival_cycle, 1_000);
    let placed = late.placed_cycle.expect("late must eventually run");
    assert!(placed > 1_000, "late must wait, placed at {placed}");
    assert!(late.slowdown.unwrap() > 1.0);
    // Every job completed before the horizon.
    assert!(first
        .jobs
        .iter()
        .all(|j| j.lifecycle.unwrap().completion_cycle.is_some()));
}

#[test]
fn node_disjointness_holds_under_synthetic_churn() {
    // ~40 arrivals with short lives on a 72-node machine: constant churn, with
    // queueing whenever the random sizes collide.
    let trace = SyntheticTrace {
        name: "churny".into(),
        seed: 17,
        jobs: 40,
        mean_interarrival: 150.0,
        mean_duration: 900.0,
        sizes: vec![8, 16, 24, 32],
        patterns: vec![
            JobPattern::Uniform,
            JobPattern::RingExchange,
            JobPattern::AllToAll,
        ],
        placement: PlacementPolicy::Random { seed: 3 },
        offered_load: 0.1,
    }
    .build();
    let spec = churn_spec(RoutingKind::Piggybacking, trace, 60_000, 4_000);
    let mut sim: Simulation = spec.build_simulation();

    let params = *sim.network().params();
    let mut placements = 0usize;
    for _ in 0..300 {
        sim.run_cycles(200);
        let sched = sim.network().schedule().unwrap();
        // The invariant: no node ever belongs to two jobs, pool and slot map agree.
        sched.assert_disjoint();
        assert!(sched.free_nodes() <= params.num_nodes());
        placements = placements.max(sched.running_jobs());
        if sched.all_complete() {
            break;
        }
    }
    let sched = sim.network().schedule().unwrap();
    assert!(sched.all_complete(), "synthetic churn must finish in time");
    assert!(placements >= 2, "churn should overlap jobs");
    // All nodes returned to the pool, and every lifecycle is well-ordered.
    assert_eq!(sched.free_nodes(), params.num_nodes());
    for j in 0..sched.num_jobs() as u16 {
        let lifetime = sched.lifetime(j);
        let placed = lifetime.placed.expect("every job ran");
        let completed = lifetime.completed.expect("every job finished");
        assert!(lifetime.arrival <= placed);
        assert!(placed < completed);
    }
}
