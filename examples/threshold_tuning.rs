//! Misrouting-threshold tuning for RLM (the study behind Figures 10 and 11).
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```
//!
//! The adaptive mechanisms misroute a packet when a non-minimal queue is emptier than
//! `threshold × occupancy(minimal queue)`.  A high threshold misroutes aggressively
//! (good under adversarial traffic, wasteful under uniform traffic); a low threshold
//! is conservative.  The example sweeps the threshold for RLM under both uniform and
//! adversarial traffic and prints the trade-off the paper resolves at 45 %.

use dragonfly::core::{ExperimentSpec, RoutingKind, SweepRunner, TrafficKind};

fn main() {
    let h = 3;
    let thresholds = [0.30, 0.40, 0.45, 0.50, 0.60];
    for (label, traffic, load) in [
        ("uniform traffic (UN)", TrafficKind::Uniform, 0.5),
        (
            "adversarial-global (ADVG+1)",
            TrafficKind::AdversarialGlobal(1),
            0.5,
        ),
    ] {
        let specs: Vec<ExperimentSpec> = thresholds
            .iter()
            .map(|&threshold| {
                let mut spec = ExperimentSpec::new(h);
                spec.routing = RoutingKind::Rlm;
                spec.traffic = traffic.clone();
                spec.offered_load = load;
                spec.threshold = threshold;
                spec.warmup = 3_000;
                spec.measure = 4_000;
                spec.drain = 4_000;
                spec.seed = 11;
                spec
            })
            .collect();
        let reports = SweepRunner::new(label).quiet().run_steady(&specs);

        println!("\n=== RLM threshold sweep under {label}, offered load {load} ===");
        println!(
            "{:<10} {:>10} {:>14} {:>10}",
            "threshold", "accepted", "avg latency", "misroutes"
        );
        for (t, r) in thresholds.iter().zip(reports.iter()) {
            println!(
                "{:<10.2} {:>10.3} {:>14.1} {:>9.1}%",
                t,
                r.accepted_load,
                r.avg_latency_cycles,
                (r.global_misroute_fraction + r.local_misroute_fraction) * 100.0
            );
        }
    }
    println!("\nThe paper selects a 45% threshold as the trade-off between the two patterns.");
}
