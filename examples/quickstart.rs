//! Quickstart: simulate a small Dragonfly under uniform traffic with OLM routing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a balanced Dragonfly with `h = 4` (33 groups, 264 routers, 1 056 nodes),
//! drives it with uniform random traffic at 30 % load under Virtual Cut-Through, and
//! prints the steady-state latency/throughput report.

use dragonfly::core::{ExperimentBuilder, RoutingKind, TrafficKind};

fn main() {
    let h = 4;
    println!("Building a balanced Dragonfly with h = {h} and running OLM under uniform traffic...");

    let report = ExperimentBuilder::new(h)
        .routing(RoutingKind::Olm)
        .traffic(TrafficKind::Uniform)
        .offered_load(0.3)
        .seed(42)
        .warmup_cycles(3_000)
        .measure_cycles(5_000)
        .run();

    println!("\n--- steady-state report ---");
    println!("routing mechanism     : {}", report.routing);
    println!("traffic pattern       : {}", report.traffic);
    println!(
        "offered load          : {:.3} phits/(node*cycle)",
        report.offered_load
    );
    println!(
        "accepted load         : {:.3} phits/(node*cycle)",
        report.accepted_load
    );
    println!(
        "average latency       : {:.1} cycles",
        report.avg_latency_cycles
    );
    println!(
        "99th percentile       : {:.1} cycles",
        report.p99_latency_cycles
    );
    println!("average hops          : {:.2}", report.avg_hops);
    println!(
        "misrouted packets     : {:.1}% global, {:.1}% local",
        report.global_misroute_fraction * 100.0,
        report.local_misroute_fraction * 100.0
    );
    println!("packets measured      : {}", report.packets_measured);
    println!("deadlock detected     : {}", report.deadlock_detected);

    assert!(!report.deadlock_detected, "OLM must be deadlock-free");
}
