//! Churn fragmentation study: does re-placement into churn-made holes hurt a job,
//! and how much of the damage does adaptive routing undo?
//!
//! ```text
//! cargo run --release --example churn_study
//! ```
//!
//! Two job-arrival traces share the same shape (see
//! `dragonfly_sched::scenarios::fragmentation_trace`): fillers pack the machine,
//! churn at a fixed cycle frees nodes, and an aggressor/victim pair arrives into
//! the free set.  In the *fresh* trace every filler departs and the pair is placed
//! contiguously; in the *frag* trace only every other filler departs and the pair
//! is scattered into the holes — so the aggressor's hot channels run through the
//! victim's groups.  The victim's tail latency and the per-job lifecycle columns
//! quantify the fragmentation penalty per routing mechanism.

use dragonfly::core::{churn_sweep, ChurnSweep, ExperimentSpec, RoutingKind, SweepRunner};
use dragonfly::sched::scenarios::fragmentation_trace;
use dragonfly::topology::DragonflyParams;

fn main() {
    let h = 2;
    let params = DragonflyParams::new(h);
    let churn_cycle = 3_000;
    let run_cycles = 11_000;
    let aggressor_load = 0.75;
    let victim_load = 0.1;

    let mut base = ExperimentSpec::new(h);
    base.measure = run_cycles + 2_000; // horizon: a little past the last departure
    base.drain = 4_000;
    base.seed = 42;

    let sweep = ChurnSweep {
        base,
        mechanisms: vec![
            RoutingKind::Minimal,
            RoutingKind::Piggybacking,
            RoutingKind::Olm,
        ],
        traces: vec![
            fragmentation_trace(
                &params,
                false,
                aggressor_load,
                victim_load,
                churn_cycle,
                run_cycles,
                42,
            ),
            fragmentation_trace(
                &params,
                true,
                aggressor_load,
                victim_load,
                churn_cycle,
                run_cycles,
                42,
            ),
        ],
    };
    let specs = churn_sweep(&sweep);
    let reports = SweepRunner::new("churn study").run_workloads(&specs);

    println!(
        "\n{:<12} {:<6} {:>11} {:>11} {:>12} {:>10} {:>9} {:>9}",
        "routing",
        "trace",
        "victim avg",
        "victim p99",
        "victim load",
        "aggr load",
        "wait",
        "slowdown"
    );
    for (spec, report) in specs.iter().zip(&reports) {
        assert!(
            !report.aggregate.deadlock_detected,
            "{} deadlocked",
            report.aggregate.routing
        );
        let trace = spec.traffic.churn().expect("churn spec");
        let victim = report.job("victim").expect("victim job");
        let aggressor = report.job("aggressor").expect("aggressor job");
        let lifecycle = victim.lifecycle.expect("churn jobs carry lifecycles");
        println!(
            "{:<12} {:<6} {:>11.1} {:>11.1} {:>12.4} {:>10.4} {:>9} {:>9.3}",
            report.aggregate.routing,
            trace.name,
            victim.avg_latency_cycles,
            victim.p99_latency_cycles,
            victim.accepted_load,
            aggressor.accepted_load,
            lifecycle.wait_cycles.unwrap_or(0),
            lifecycle.slowdown.unwrap_or(f64::NAN),
        );
    }

    // Summarize the fragmentation penalty (frag p99 / fresh p99) per mechanism.
    println!("\nfragmentation penalty (victim p99, frag / fresh):");
    for (i, mechanism) in sweep.mechanisms.iter().enumerate() {
        let fresh = &reports[2 * i];
        let frag = &reports[2 * i + 1];
        let ratio = frag.job("victim").unwrap().p99_latency_cycles
            / fresh.job("victim").unwrap().p99_latency_cycles.max(1.0);
        println!("  {:<12} {ratio:>6.2}x", format!("{mechanism:?}"));
    }
}
