//! Adversarial-traffic comparison: the scenario that motivates the paper.
//!
//! ```text
//! cargo run --release --example adversarial_comparison
//! ```
//!
//! When every group sends all of its traffic to one other group (ADVG+N), the single
//! global link between the two groups saturates and minimal routing collapses to
//! `1/(2h²+1)` phits/(node·cycle).  Valiant routing fixes that but, for the ADVG+h
//! offset, it saturates one local link in every intermediate group and is capped near
//! `1/h`.  Only mechanisms with *local* misrouting (PAR-6/2, RLM, OLM) escape both
//! pathologies.  This example reproduces the comparison on a small network.

use dragonfly::core::{ExperimentSpec, FlowControlKind, RoutingKind, SweepRunner, TrafficKind};

fn main() {
    let h = 3;
    let offered = 0.6;
    let mechanisms = [
        RoutingKind::Minimal,
        RoutingKind::Valiant,
        RoutingKind::Piggybacking,
        RoutingKind::Par62,
        RoutingKind::Rlm,
        RoutingKind::Olm,
    ];
    for (label, traffic) in [
        (
            "ADVG+1 (mild adversarial-global)",
            TrafficKind::AdversarialGlobal(1),
        ),
        (
            "ADVG+h (pathological offset)",
            TrafficKind::AdversarialGlobal(h),
        ),
    ] {
        let specs: Vec<ExperimentSpec> = mechanisms
            .iter()
            .map(|&routing| {
                let mut spec = ExperimentSpec::new(h);
                spec.flow_control = FlowControlKind::Vct;
                spec.routing = routing;
                spec.traffic = traffic.clone();
                spec.offered_load = offered;
                spec.warmup = 3_000;
                spec.measure = 4_000;
                spec.drain = 4_000;
                spec.seed = 7;
                spec
            })
            .collect();
        let reports = SweepRunner::new(label).quiet().run_steady(&specs);

        println!("\n=== {label}, offered load {offered} phits/(node*cycle), h = {h} ===");
        println!(
            "{:<10} {:>10} {:>12} {:>10} {:>10}",
            "routing", "accepted", "avg latency", "gmis%", "lmis%"
        );
        for r in &reports {
            println!(
                "{:<10} {:>10.3} {:>12.1} {:>9.1}% {:>9.1}%",
                r.routing,
                r.accepted_load,
                r.avg_latency_cycles,
                r.global_misroute_fraction * 100.0,
                r.local_misroute_fraction * 100.0
            );
        }
        let minimal = &reports[0];
        let best = reports
            .iter()
            .max_by(|a, b| a.accepted_load.total_cmp(&b.accepted_load))
            .unwrap();
        println!(
            "--> best mechanism: {} ({:.3} vs {:.3} for minimal routing, {:.1}x)",
            best.routing,
            best.accepted_load,
            minimal.accepted_load,
            best.accepted_load / minimal.accepted_load.max(1e-9)
        );
    }
}
