//! Probe study: watch a run from the inside with the observability layer.
//!
//! ```text
//! cargo run --release --example probe_study
//! ```
//!
//! Runs OLM under ADVG+1 on the h = 2 machine twice — once plain, once with
//! every probe instrument installed — and
//!
//! 1. verifies live that the probes never perturbed the report (the layer's
//!    cardinal invariant),
//! 2. narrates what the instruments saw: the injection/delivery ramp, the
//!    buffered-phit peak, the busiest routers, and one sampled packet's full
//!    flight through the network,
//! 3. writes the probe file set to `results/probe_study/` and re-parses the
//!    emitted CSV/JSONL — locating the hottest (link, VC) heatmap cell and
//!    checking the engine diagnostics columns (arena growth, ring high-water
//!    marks, active-set populations) — doubling as an end-to-end check that
//!    the files are well-formed.
//!
//! CI runs this example as the probe smoke test.

use dragonfly::core::{ExperimentSpec, ProbeConfig, RoutingKind, TrafficKind};
use dragonfly::probe::{FLIGHT_DELIVER, FLIGHT_HOP, FLIGHT_INJECT};

fn main() {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::AdversarialGlobal(1);
    spec.offered_load = 0.3;
    spec.seed = 7;
    spec.warmup = 500;
    spec.measure = 2_000;
    spec.drain = 1_500;

    println!("Running OLM under ADVG+1 (h = 2, load 0.3) with every probe instrument on...");
    let probes = ProbeConfig::full(128);
    let stride = probes.stride;
    let (report, probe) = spec.run_probed(probes);

    // The cardinal invariant, checked live: probes only read.
    assert_eq!(
        spec.run(),
        report,
        "probes perturbed the run — this is a probe bug"
    );
    println!(
        "probe-off re-run is byte-identical: accepted load {:.3}, avg latency {:.1} cycles\n",
        report.accepted_load, report.avg_latency_cycles
    );

    // --- time series -----------------------------------------------------
    let series = probe.series();
    let n = probe.samples();
    println!("--- time series ({n} samples, every {stride} cycles) ---");
    let inj = series.injected.samples();
    let del = series.delivered.samples();
    for i in [0, n / 4, n / 2, 3 * n / 4, n - 1] {
        println!(
            "cycle {:>5}: injected {:>6}  delivered {:>6}  buffered {:>5} phits  \
             PB-congested {:>2} channels",
            series.injected.cycle_of(i),
            inj[i] as u64,
            del[i] as u64,
            series.buffered_phits.samples()[i] as u64,
            series.pb_congested.samples()[i] as u64,
        );
    }
    let (peak_i, peak) = series
        .buffered_phits
        .samples()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("run produced no samples");
    println!(
        "peak buffering: {} phits at cycle {}",
        *peak as u64,
        series.buffered_phits.cycle_of(peak_i)
    );

    let top = probe.top_routers(4);
    println!("busiest routers by activity: {top:?}");

    // --- flight recorder -------------------------------------------------
    let flight = probe.sorted_flight();
    println!(
        "\n--- flight recorder ({} events, {} dropped) ---",
        flight.len(),
        probe.flight_dropped()
    );
    // Longest recorded journey: the sampled packet with the most events.
    let longest = flight
        .iter()
        .map(|e| (e.src, e.gen_cycle))
        .max_by_key(|key| {
            flight
                .iter()
                .filter(|e| (e.src, e.gen_cycle) == *key)
                .count()
        })
        .expect("flight recorder sampled nothing");
    println!("packet (src {}, generated cycle {}):", longest.0, longest.1);
    for e in flight.iter().filter(|e| (e.src, e.gen_cycle) == longest) {
        let stage = match e.kind {
            FLIGHT_INJECT => format!("injected at router {}", e.router),
            FLIGHT_HOP => format!(
                "forwarded by router {} via port {} vc {}{}",
                e.router,
                e.port,
                e.vc,
                if e.nonminimal == 1 { " (misroute)" } else { "" }
            ),
            FLIGHT_DELIVER => format!("delivered at router {} (dst node {})", e.router, e.dst),
            other => format!("unknown stage {other}"),
        };
        println!("  cycle {:>5}: {stage}", e.cycle);
    }

    // --- emission + parse-back -------------------------------------------
    let out = std::path::Path::new("results/probe_study");
    std::fs::create_dir_all(out).expect("cannot create results/probe_study");
    let files = probe
        .write_all(out, "probe_study")
        .expect("probe emission failed");
    println!("\n--- emitted files ---");
    for f in &files {
        println!("wrote {}", f.display());
    }

    // Parse back the series CSV: header + one row per sample.
    let series_csv = std::fs::read_to_string(out.join("probe_study_series.csv")).unwrap();
    let rows: Vec<&str> = series_csv.lines().collect();
    assert!(rows[0].starts_with("cycle,injected,delivered,"));
    assert_eq!(rows.len(), n + 1, "series CSV row count != sample count");

    // Parse back the flight JSONL: JSON object per line, dropped-count trailer.
    let flight_jsonl = std::fs::read_to_string(out.join("probe_study_flight.jsonl")).unwrap();
    let lines: Vec<&str> = flight_jsonl.lines().collect();
    assert_eq!(lines.len(), flight.len() + 1);
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(lines.last().unwrap().starts_with("{\"flight_dropped\":"));

    // Parse back the engine diagnostics CSV: the full post-fabric column set
    // (arena growth, ring high-water marks, and the PR-8 active-set
    // populations), with a live network necessarily driving both active sets.
    let diag_csv = std::fs::read_to_string(out.join("probe_study_diag.csv")).unwrap();
    let mut diag_rows = diag_csv.lines();
    assert_eq!(
        diag_rows.next().expect("diag CSV is empty"),
        "cycle,arena_grows,phit_ring_high_water,credit_ring_high_water,active_links,active_routers",
        "diag CSV header drifted from the documented schema"
    );
    let (mut peak_links, mut peak_routers) = (0u64, 0u64);
    for row in diag_rows {
        let f: Vec<&str> = row.split(',').collect();
        assert_eq!(f.len(), 6, "malformed diag row: {row}");
        peak_links = peak_links.max(f[4].parse().expect("malformed active_links"));
        peak_routers = peak_routers.max(f[5].parse().expect("malformed active_routers"));
    }
    assert!(
        peak_links > 0 && peak_routers > 0,
        "a loaded run must populate the link and router active sets"
    );
    println!("active-set peaks: {peak_links} links, {peak_routers} routers");

    // Parse back the heatmap CSV and locate the hottest (link, VC) cell.
    let heatmap_csv = std::fs::read_to_string(out.join("probe_study_heatmap.csv")).unwrap();
    let hottest = heatmap_csv
        .lines()
        .skip(1)
        .map(|l| {
            let f: Vec<&str> = l.split(',').collect();
            let phits: u64 = f[5].parse().expect("malformed heatmap row");
            (
                phits,
                f[0].to_string(),
                f[1].to_string(),
                f[2].to_string(),
                f[3].to_string(),
                f[4].to_string(),
            )
        })
        .max()
        .expect("heatmap recorded nothing");
    println!(
        "hottest heatmap cell: router {} port {} ({}) vc {} carried {} phits in the window \
         starting at cycle {}",
        hottest.2, hottest.3, hottest.4, hottest.5, hottest.0, hottest.1
    );

    assert!(!report.deadlock_detected);
    println!("\nprobe study complete — outputs under {}", out.display());
}
