//! Transient pattern-switch study: a single job flips from uniform traffic to
//! ADVG+h mid-run, and the per-phase breakdown shows how each routing mechanism
//! absorbs the change.
//!
//! ```text
//! cargo run --release --example transient_switch
//! ```
//!
//! Phase 0 drives UN at a load that is comfortable for every mechanism; at the
//! switch cycle the pattern becomes ADVG+h (the paper's pathological offset), which
//! saturates minimal routing but stays deliverable for the adaptive mechanisms.
//! Comparing the per-phase latencies of one run quantifies the transient cost.

use dragonfly::core::{ExperimentSpec, RoutingKind, SweepRunner, TrafficKind, WorkloadSpec};

fn main() {
    let h = 2;
    let load = 0.25;
    let warmup = 2_000;
    let measure = 8_000;
    // Switch patterns in the middle of the measurement window.
    let switch_cycle = warmup + measure / 2;

    let mut spec = ExperimentSpec::new(h);
    spec.seed = 21;
    spec.warmup = warmup;
    spec.measure = measure;
    spec.drain = 10_000;

    let workload =
        WorkloadSpec::transient(spec.sim_config().params.num_nodes(), load, switch_cycle, h);
    println!(
        "workload: {} (switch at cycle {switch_cycle})\n",
        workload.label()
    );
    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "routing", "phase", "pattern", "inj load", "acc load", "avg lat", "p99"
    );

    let specs: Vec<ExperimentSpec> = [
        RoutingKind::Minimal,
        RoutingKind::Piggybacking,
        RoutingKind::Olm,
    ]
    .into_iter()
    .map(|routing| {
        let mut wspec = spec.clone();
        wspec.routing = routing;
        wspec.traffic = TrafficKind::Workload(workload.clone());
        wspec
    })
    .collect();
    // The three mechanism points are independent; run them in parallel.
    let reports = SweepRunner::new("transient switch")
        .quiet()
        .run_workloads(&specs);
    for report in &reports {
        let job = &report.jobs[0];
        for phase in &job.phases {
            println!(
                "{:<12} {:>6} {:>10} {:>12.4} {:>12.4} {:>12.1} {:>10.1}",
                report.aggregate.routing,
                phase.phase,
                phase.pattern,
                phase.injected_load,
                phase.accepted_load,
                phase.avg_latency_cycles,
                phase.p99_latency_cycles,
            );
        }
        assert!(!report.aggregate.deadlock_detected);
    }

    println!(
        "\nReading: every mechanism matches the offered load in the UN phase; after the\n\
         switch, minimal routing's ADVG phase collapses (accepted load pinned at the\n\
         single-channel bound, latency exploding) while the adaptive mechanisms keep\n\
         accepting most of the load at bounded latency."
    );
}
