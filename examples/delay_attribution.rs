//! Delay attribution: where Minimal's latency actually goes vs where OLM's
//! goes under ADVG+1 — the headline study of the per-packet delay ledger.
//!
//! ```text
//! cargo run --release --example delay_attribution            # paper scale, h = 8
//! cargo run --release --example delay_attribution -- 2       # quick, h = 2
//! ```
//!
//! Runs both mechanisms on the same adversarial configuration with
//! `--probe-delay` semantics (every delivered packet's exact six-component
//! decomposition folded into the ledger), verifies integer conservation live,
//! prints the network-wide component tables, and records the study as
//! `results/delay_attribution_h<h>.md`.

use std::fmt::Write as _;

use dragonfly::core::{ExperimentSpec, ProbeConfig, RoutingKind, TrafficKind};
use dragonfly::probe::{DelayLedger, DelayRow, DELAY_COMPONENT_NAMES};
use dragonfly::topology::DragonflyParams;

const LOAD: f64 = 0.2;
const SEED: u64 = 23;

struct Study {
    kind: RoutingKind,
    accepted: f64,
    avg_latency: f64,
    net: Vec<DelayRow>,
    minimal_packets: u64,
    misrouted_packets: u64,
    detour_cycles: u64,
    total_cycles: u64,
    folded: u64,
}

fn run(kind: RoutingKind, h: usize, warmup: u64, measure: u64) -> Study {
    let mut spec = ExperimentSpec::new(h);
    spec.routing = kind;
    spec.traffic = TrafficKind::AdversarialGlobal(1);
    spec.offered_load = LOAD;
    spec.seed = SEED;
    spec.warmup = warmup;
    spec.measure = measure;
    spec.drain = 8 * measure;
    let probes = ProbeConfig {
        delay: true,
        ..ProbeConfig::full(64)
    };
    let (report, probe) = spec.run_probed(probes);
    let ledger: &DelayLedger = probe.delay_ledger().expect("delay ledger installed");
    assert!(ledger.folded() > 0, "{kind:?}: nothing delivered");
    assert_eq!(
        ledger.violations(),
        0,
        "{kind:?}: component conservation violated"
    );
    let net: Vec<DelayRow> = ledger
        .rows()
        .into_iter()
        .filter(|r| r.scope == "net")
        .collect();
    assert_eq!(net.len(), DELAY_COMPONENT_NAMES.len());
    Study {
        kind,
        accepted: report.accepted_load,
        avg_latency: report.avg_latency_cycles,
        minimal_packets: ledger.minimal().packets,
        misrouted_packets: ledger.misrouted().packets,
        detour_cycles: ledger.minimal().cycles[4] + ledger.misrouted().cycles[4],
        total_cycles: net.iter().map(|r| r.cycles).sum(),
        folded: ledger.folded(),
        net,
    }
}

fn table(md: &mut String, s: &Study) {
    let _ = writeln!(
        md,
        "\n## {:?}\n\naccepted load {:.3}, mean latency {:.1} cycles; {} packets folded, \
         {} minimal / {} misrouted, conservation violations 0.\n",
        s.kind, s.accepted, s.avg_latency, s.folded, s.minimal_packets, s.misrouted_packets
    );
    let _ = writeln!(
        md,
        "| component | cycles | share | mean/pkt | p50 | p95 | p99 |\n\
         |---|---:|---:|---:|---:|---:|---:|"
    );
    for r in &s.net {
        let pct = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
        let _ = writeln!(
            md,
            "| {} | {} | {:.1} % | {:.2} | {} | {} | {} |",
            r.component,
            r.cycles,
            100.0 * r.cycles as f64 / s.total_cycles as f64,
            r.cycles as f64 / s.folded as f64,
            pct(r.p50),
            pct(r.p95),
            pct(r.p99),
        );
    }
}

/// Name of the component carrying the most cycles in the study.
fn dominant(s: &Study) -> (&'static str, f64) {
    let r = s.net.iter().max_by_key(|r| r.cycles).unwrap();
    (r.component, 100.0 * r.cycles as f64 / s.total_cycles as f64)
}

fn main() {
    let h: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    // Short windows at paper scale (one h = 8 cycle is ~4 orders of magnitude
    // more work than one h = 2 cycle), longer ones on the small machines.
    let (warmup, measure) = if h >= 8 { (300, 600) } else { (1_000, 3_000) };
    let nodes = DragonflyParams::new(h).num_nodes();

    println!("Delay attribution under ADVG+1 (h = {h}, {nodes} nodes, load {LOAD})...");
    let minimal = run(RoutingKind::Minimal, h, warmup, measure);
    println!(
        "  Minimal: mean latency {:.1} cycles, dominant component {} ({:.1} %)",
        minimal.avg_latency,
        dominant(&minimal).0,
        dominant(&minimal).1
    );
    let olm = run(RoutingKind::Olm, h, warmup, measure);
    println!(
        "  OLM:     mean latency {:.1} cycles, dominant component {} ({:.1} %)",
        olm.avg_latency,
        dominant(&olm).0,
        dominant(&olm).1
    );

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Delay attribution at h = {h}: Minimal vs OLM under ADVG+1\n\n\
         Recorded from\n\n\
         ```text\n\
         cargo run --release --example delay_attribution{}\n\
         ```\n\n\
         ADVG+1 traffic (every node in group *i* sends to group *i*+1) at \
         offered load {LOAD} on the h = {h} machine ({nodes} nodes), seed \
         {SEED}, warmup {warmup} / measure {measure} cycles.  Every delivered \
         packet's latency is decomposed *exactly* (integer conservation, no \
         residual — `violations = 0` asserted live for both runs) into the six \
         ledger components; shares are of total network-wide delay cycles, \
         percentiles are exact 1-cycle upper bin edges.",
        if h == 8 {
            String::new()
        } else {
            format!(" -- {h}")
        }
    );
    table(&mut md, &minimal);
    table(&mut md, &olm);

    // Queueing = the three wait components (injection_queue, vc_wait,
    // credit_wait); the rest is wire time, detour, and serialization.
    let queueing = |s: &Study| {
        let q: u64 = s.net[..3].iter().map(|r| r.cycles).sum();
        100.0 * q as f64 / s.total_cycles as f64
    };
    let (min_dom, min_share) = dominant(&minimal);
    let (olm_dom, olm_share) = dominant(&olm);
    let _ = writeln!(
        md,
        "\n## Reading\n\n\
         The two mechanisms spend their latency in different places, and the \
         ledger names them.  Minimal routing forces every packet of group *i* \
         onto the single *i* → *i*+1 global link, so {:.1} % of its delay \
         cycles are queueing (**{min_dom}** alone is {min_share:.1} %) — \
         packets back up at the sources and in VC buffers behind the \
         bottleneck link — while its detour component is identically 0 \
         ({} cycles) by construction.  OLM instead misroutes {} of {} \
         delivered packets ({:.1} %) through an intermediate group: queueing \
         collapses to {:.1} % and its dominant component is plain \
         **{olm_dom}** ({olm_share:.1} %), i.e. wire time.  It pays {} detour \
         cycles ({:.1} % of its total) for the longer non-minimal paths, and \
         in exchange the mean end-to-end latency drops from {:.1} to {:.1} \
         cycles ({:.1}×).  This is the paper's adversarial argument made \
         quantitative per component: under ADVG the minimal path *is* the \
         congestion, and the cycles OLM spends detouring buy back far more \
         cycles of queueing.",
        queueing(&minimal),
        minimal.detour_cycles,
        olm.misrouted_packets,
        olm.folded,
        100.0 * olm.misrouted_packets as f64 / olm.folded as f64,
        queueing(&olm),
        olm.detour_cycles,
        100.0 * olm.detour_cycles as f64 / olm.total_cycles as f64,
        minimal.avg_latency,
        olm.avg_latency,
        minimal.avg_latency / olm.avg_latency,
    );

    std::fs::create_dir_all("results").expect("cannot create results/");
    let path = format!("results/delay_attribution_h{h}.md");
    std::fs::write(&path, &md).expect("cannot write the study");
    println!("recorded {path}");
}
