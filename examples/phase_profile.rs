//! Phase profile: where does the wall-clock of a big run go?
//!
//! ```text
//! cargo run --release --features profile --example phase_profile
//! cargo run --release --features profile --example phase_profile -- --h 4 --shards 2
//! ```
//!
//! Runs one steady-state point (OLM, uniform, load 0.2 — the `shard_scaling`
//! point) on the sequential engine and then on the sharded engine, and prints
//! the `cfg(feature = "profile")` wall-clock breakdown: nanoseconds per
//! pipeline phase (arrivals / injection / routing / switch / bookkeeping) for
//! each engine, plus each shard's time at the export→import barrier — the
//! load-imbalance component of the sharded wall time.
//!
//! Defaults to the paper-scale h = 8 machine with deliberately short windows
//! (the profile measures the cycle loop, not steady-state convergence);
//! `results/probe_phase_profile.md` records a run of this example.
//!
//! Besides the textual breakdown, the run is exported as a Perfetto-openable
//! trace (`results/phase_profile_trace.json`): one process per engine, one
//! thread per shard, phase spans laid end to end plus each shard's barrier
//! wait.  This is the one *wall-clock* trace producer — deliberately an
//! example-level export, never part of `ProbeRecorder::write_all`, because
//! wall time is engine-dependent and would break the sequential-vs-sharded
//! byte-identity guarantee of the probe file set.

use dragonfly::core::{ExperimentSpec, RoutingKind, TrafficKind};
use dragonfly::probe::TraceBuilder;
use dragonfly::routing::{AdaptiveParams, Olm};
use dragonfly::shard::{ShardPlan, ShardedSimulation};
use dragonfly::sim::{PhaseProfile, Simulation};

fn print_profile(tag: &str, profile: &PhaseProfile) {
    let total = profile.total_nanos().max(1);
    println!("{tag} ({} cycles timed):", profile.cycles);
    for (name, nanos) in profile.rows() {
        println!(
            "  {name:<12} {:>9.1} ms  {:>5.1} %  {:>7.0} ns/cycle",
            nanos as f64 / 1e6,
            100.0 * nanos as f64 / total as f64,
            nanos as f64 / profile.cycles.max(1) as f64,
        );
    }
    println!(
        "  {:<12} {:>9.1} ms",
        "total",
        profile.total_nanos() as f64 / 1e6
    );
}

fn main() {
    let mut h = 8;
    let mut shards = 4;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = || args.next().expect("flag needs a value").parse().unwrap();
        match arg.as_str() {
            "--h" => h = grab(),
            "--shards" => shards = grab(),
            other => panic!("unknown flag {other} (supported: --h N, --shards N)"),
        }
    }

    let mut spec = ExperimentSpec::new(h);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::Uniform;
    spec.offered_load = 0.2;
    spec.warmup = 300;
    spec.measure = 600;
    spec.drain = 600;
    println!(
        "Profiling OLM/UN @ {:.1} on h = {h} ({} nodes), warmup {} / measure {} cycles...\n",
        spec.offered_load,
        spec.sim_config().params.num_nodes(),
        spec.warmup,
        spec.measure
    );

    let params = AdaptiveParams::with_threshold(spec.threshold);
    let mut sim = Simulation::with_routing(
        spec.sim_config(),
        Olm::new(params),
        spec.traffic.build(&spec.sim_config().params),
    );
    let t0 = std::time::Instant::now();
    let baseline = sim.run_steady_state(spec.offered_load, spec.warmup, spec.measure, spec.drain);
    let seq_wall = t0.elapsed();
    print_profile("sequential engine", sim.network().phase_profile());
    println!(
        "  whole run     {:>9.1} ms wall\n",
        seq_wall.as_secs_f64() * 1e3
    );

    let mut sharded = ShardedSimulation::new(
        spec.sim_config(),
        ShardPlan::new(shards),
        Olm::new(params),
        || spec.traffic.build(&spec.sim_config().params),
    );
    let t0 = std::time::Instant::now();
    let report = sharded.run_steady_state(spec.offered_load, spec.warmup, spec.measure, spec.drain);
    let shard_wall = t0.elapsed();
    assert_eq!(report, baseline, "sharded report diverged — engine bug");
    for s in 0..shards {
        print_profile(&format!("shard {s}/{shards}"), sharded.phase_profile(s));
        println!(
            "  barrier wait  {:>9.1} ms  ({:.1} % of this shard's wall)\n",
            sharded.barrier_wait_nanos(s) as f64 / 1e6,
            100.0 * sharded.barrier_wait_nanos(s) as f64
                / (sharded.phase_profile(s).total_nanos() + sharded.barrier_wait_nanos(s)).max(1)
                    as f64,
        );
    }
    println!(
        "sharded whole run {:>7.1} ms wall ({:.2}x vs sequential, reports byte-identical)",
        shard_wall.as_secs_f64() * 1e3,
        seq_wall.as_secs_f64() / shard_wall.as_secs_f64()
    );

    // Perfetto export: aggregate phase times as end-to-end spans (µs), one
    // trace process per engine, one thread per shard, barrier wait appended
    // after each shard's phases.
    let mut tb = TraceBuilder::new();
    tb.name_process(0, "sequential engine");
    tb.name_thread(0, 0, "cycle loop");
    let mut ts = 0.0;
    for (name, nanos) in sim.network().phase_profile().rows() {
        let dur = nanos as f64 / 1e3;
        tb.span(name, 0, 0, ts, dur, &[("nanos", nanos.to_string())]);
        ts += dur;
    }
    tb.name_process(1, "sharded engine");
    for s in 0..shards {
        let tid = s as u32;
        tb.name_thread(1, tid, &format!("shard {s}/{shards}"));
        let mut ts = 0.0;
        for (name, nanos) in sharded.phase_profile(s).rows() {
            let dur = nanos as f64 / 1e3;
            tb.span(name, 1, tid, ts, dur, &[("nanos", nanos.to_string())]);
            ts += dur;
        }
        let wait = sharded.barrier_wait_nanos(s);
        tb.span(
            "barrier wait",
            1,
            tid,
            ts,
            wait as f64 / 1e3,
            &[("nanos", wait.to_string())],
        );
    }
    let out = std::path::Path::new("results");
    std::fs::create_dir_all(out).expect("cannot create results/");
    let trace_path = out.join("phase_profile_trace.json");
    std::fs::write(&trace_path, tb.render()).expect("trace write failed");
    println!(
        "wrote {} ({} events — open at ui.perfetto.dev)",
        trace_path.display(),
        tb.len()
    );
}
