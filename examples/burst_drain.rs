//! Burst-consumption experiment (the protocol behind Figures 6b and 9b).
//!
//! ```text
//! cargo run --release --example burst_drain
//! ```
//!
//! Every node sends a fixed batch of packets following the mixed ADVG+h / ADVL+1
//! pattern and the network runs until the last packet is delivered.  Mechanisms with
//! local misrouting drain the burst far faster than Piggybacking, which is the
//! paper's headline burst result (OLM needs ~36 % of PB's time at full scale).

use dragonfly::core::{run_batches_parallel, ExperimentSpec, RoutingKind, TrafficKind};

fn main() {
    let h = 3;
    let packets_per_node = 50;
    let mechanisms = [
        RoutingKind::Piggybacking,
        RoutingKind::Par62,
        RoutingKind::Rlm,
        RoutingKind::Olm,
    ];
    let specs: Vec<ExperimentSpec> = mechanisms
        .iter()
        .map(|&routing| {
            let mut spec = ExperimentSpec::new(h);
            spec.routing = routing;
            spec.traffic = TrafficKind::Mixed {
                global_fraction: 0.5,
                global_offset: h,
                local_offset: 1,
            };
            spec.seed = 5;
            spec
        })
        .collect();

    println!(
        "Draining a burst of {packets_per_node} packets/node (h = {h}, 50% ADVG+{h} / 50% ADVL+1)...",
    );
    let reports = run_batches_parallel(&specs, packets_per_node, 10_000_000, None, |_, _| {});

    println!(
        "\n{:<10} {:>18} {:>14} {:>12}",
        "routing", "consumption cycles", "avg latency", "relative"
    );
    let pb_cycles = reports[0].consumption_cycles as f64;
    for r in &reports {
        println!(
            "{:<10} {:>18} {:>14.1} {:>11.1}%",
            r.routing,
            r.consumption_cycles,
            r.avg_latency_cycles,
            r.consumption_cycles as f64 / pb_cycles * 100.0
        );
        assert!(!r.deadlock_detected);
        assert!(!r.timed_out);
    }
    println!(
        "\n(100% = Piggybacking; the paper reports ~36% for OLM and ~42.5% for RLM at h = 8.)"
    );
}
