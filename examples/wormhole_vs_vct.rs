//! Flow-control comparison: Virtual Cut-Through versus Wormhole with RLM.
//!
//! ```text
//! cargo run --release --example wormhole_vs_vct
//! ```
//!
//! The paper evaluates its mechanisms under two setups: small 8-phit packets with VCT
//! (Cray Cascade-like) and large 80-phit packets split into 10-phit flits with
//! Wormhole (IBM PERCS-like).  RLM works under both; this example runs the same
//! adversarial workload under each and shows the latency and saturation differences.

use dragonfly::core::{ExperimentBuilder, FlowControlKind, RoutingKind, TrafficKind};

fn main() {
    let h = 3;
    println!("RLM under ADVG+1, h = {h}: Virtual Cut-Through vs. Wormhole\n");
    println!(
        "{:<10} {:>8} {:>10} {:>14} {:>10}",
        "flow ctl", "offered", "accepted", "avg latency", "gmis%"
    );
    for flow in [FlowControlKind::Vct, FlowControlKind::Wormhole] {
        for offered in [0.1, 0.3, 0.5] {
            let report = ExperimentBuilder::new(h)
                .routing(RoutingKind::Rlm)
                .traffic(TrafficKind::AdversarialGlobal(1))
                .flow_control(flow)
                .offered_load(offered)
                .seed(13)
                .warmup_cycles(3_000)
                .measure_cycles(4_000)
                .run();
            println!(
                "{:<10} {:>8.2} {:>10.3} {:>14.1} {:>9.1}%",
                flow.name(),
                offered,
                report.accepted_load,
                report.avg_latency_cycles,
                report.global_misroute_fraction * 100.0
            );
            assert!(
                !report.deadlock_detected,
                "RLM must be deadlock-free under {flow:?}"
            );
        }
    }
    println!(
        "\nWormhole latencies are higher because 80-phit packets serialize over every link;\n\
         OLM is absent here because it requires whole-packet (VCT) buffering."
    );
}
