//! Workload interference study: an adversarial aggressor job against a uniform
//! victim job sharing every router of the machine.
//!
//! ```text
//! cargo run --release --example interference_study
//! ```
//!
//! Half of the nodes run ADVG+1 at high load (the *aggressor*), the other half run
//! job-uniform traffic at low load (the *victim*); both jobs are placed round-robin
//! over the routers, so they share local and global channels.  Under minimal routing
//! the aggressor saturates one global channel per group and victim packets queue
//! behind it; adaptive mechanisms (PB, OLM) divert around the hot channels and
//! shield the victim.  The per-job breakdown quantifies exactly that.

use dragonfly::core::{ExperimentSpec, RoutingKind, SweepRunner, TrafficKind, WorkloadSpec};

fn main() {
    let h = 2;
    let aggressor_load = 0.24;
    let victim_load = 0.1;

    // Baseline: the victim's load on an otherwise idle machine (no aggressor).
    let mut spec = ExperimentSpec::new(h);
    spec.traffic = TrafficKind::Uniform;
    spec.offered_load = victim_load;
    spec.seed = 9;
    spec.warmup = 3_000;
    spec.measure = 5_000;
    spec.drain = 6_000;
    let alone = spec.run();
    println!(
        "victim-style UN traffic alone: {:.1} cycles avg latency (p99 {:.1})\n",
        alone.avg_latency_cycles, alone.p99_latency_cycles
    );

    let workload = WorkloadSpec::interference(
        spec.sim_config().params.num_nodes(),
        1,
        aggressor_load,
        victim_load,
    );
    println!("workload: {}\n", workload.label());
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "routing", "victim avg", "victim p99", "victim load", "aggr load", "aggr p99"
    );

    let specs: Vec<ExperimentSpec> = [
        RoutingKind::Minimal,
        RoutingKind::Piggybacking,
        RoutingKind::Olm,
    ]
    .into_iter()
    .map(|routing| {
        let mut wspec = spec.clone();
        wspec.routing = routing;
        wspec.traffic = TrafficKind::Workload(workload.clone());
        wspec
    })
    .collect();
    // The three mechanism points are independent; run them in parallel.
    let reports = SweepRunner::new("interference study")
        .quiet()
        .run_workloads(&specs);
    for report in &reports {
        let victim = report.job("victim").expect("victim job");
        let aggressor = report.job("aggressor").expect("aggressor job");
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>12.4} {:>12.4} {:>10.1}",
            report.aggregate.routing,
            victim.avg_latency_cycles,
            victim.p99_latency_cycles,
            victim.accepted_load,
            aggressor.accepted_load,
            aggressor.p99_latency_cycles,
        );
        assert!(!report.aggregate.deadlock_detected);
    }

    println!(
        "\nReading: under Minimal the victim's latency is far above its solo baseline;\n\
         PB and OLM pull it back down while also accepting more aggressor traffic."
    );
}
